"""Incremental graph construction with de-duplication.

Generators and file loaders accumulate edges here; :meth:`build` sorts,
optionally removes duplicate/self edges, and assembles the CSR
:class:`~repro.graph.graph.Graph`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph


class GraphBuilder:
    """Accumulates edges and produces an immutable :class:`Graph`."""

    def __init__(self, num_vertices: int = 0, name: str = "graph",
                 allow_self_loops: bool = False,
                 deduplicate: bool = True):
        self.num_vertices = num_vertices
        self.name = name
        self.allow_self_loops = allow_self_loops
        self.deduplicate = deduplicate
        self._src: list[int] = []
        self._dst: list[int] = []
        self._w: list[float] = []

    def add_vertex(self) -> int:
        """Allocate the next vertex id."""
        vid = self.num_vertices
        self.num_vertices += 1
        return vid

    def ensure_vertex(self, vid: int) -> None:
        """Grow the vertex space to include ``vid``."""
        if vid < 0:
            raise GraphError(f"negative vertex id: {vid}")
        if vid >= self.num_vertices:
            self.num_vertices = vid + 1

    def add_edge(self, src: int, dst: int, weight: float = 1.0) -> None:
        self.ensure_vertex(src)
        self.ensure_vertex(dst)
        if src == dst and not self.allow_self_loops:
            return
        self._src.append(src)
        self._dst.append(dst)
        self._w.append(weight)

    def add_edges(self, edges) -> None:
        """Bulk-add ``(src, dst)`` or ``(src, dst, weight)`` tuples."""
        for edge in edges:
            if len(edge) == 2:
                self.add_edge(edge[0], edge[1])
            else:
                self.add_edge(edge[0], edge[1], edge[2])

    @property
    def num_pending_edges(self) -> int:
        return len(self._src)

    def build(self) -> Graph:
        """Assemble the immutable graph (keeps the builder reusable)."""
        src = np.asarray(self._src, dtype=np.int64)
        dst = np.asarray(self._dst, dtype=np.int64)
        w = np.asarray(self._w, dtype=np.float64)
        if self.deduplicate and src.size:
            # Keep the first occurrence of each (src, dst) pair.
            keys = src * max(1, self.num_vertices) + dst
            _, first_idx = np.unique(keys, return_index=True)
            first_idx.sort()
            src, dst, w = src[first_idx], dst[first_idx], w[first_idx]
        return Graph(self.num_vertices, src, dst, w, name=self.name)
