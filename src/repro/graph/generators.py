"""Synthetic graph generators.

These produce the scaled stand-ins for the paper's datasets (see
:mod:`repro.datasets.catalog`) plus small structured graphs used in
tests.  All generators are deterministic given a seed.

The power-law family mirrors the paper's synthetic graphs (Table 4):
fixed vertex count with the power-law constant alpha varying from 2.2
down to 1.8, where lower alpha means heavier tails and more edges.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def erdos_renyi(num_vertices: int, num_edges: int, seed: int = 0,
                name: str = "erdos-renyi") -> Graph:
    """Uniform random directed graph with ~``num_edges`` distinct edges."""
    if num_vertices < 1:
        raise GraphError("num_vertices must be >= 1")
    rng = _rng(seed)
    # Oversample to survive dedup/self-loop removal.
    m = int(num_edges * 1.15) + 8
    src = rng.integers(0, num_vertices, size=m, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=m, dtype=np.int64)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    keys = src * num_vertices + dst
    _, idx = np.unique(keys, return_index=True)
    idx.sort()
    src, dst = src[idx][:num_edges], dst[idx][:num_edges]
    return Graph(num_vertices, src, dst, name=name)


def power_law(num_vertices: int, alpha: float, seed: int = 0,
              min_out_degree: int = 1, max_degree: int | None = None,
              avg_degree: float | None = None, selfish_frac: float = 0.02,
              powerlaw_in: bool = True, name: str | None = None) -> Graph:
    """Directed graph with Zipf(alpha) out-degrees.

    With ``powerlaw_in`` (the default, matching natural web/social
    graphs), edge targets are drawn from a Zipf-weighted popularity
    distribution too, so in-degrees are also heavy-tailed — the regime
    PowerLyra's hybrid-cut exploits.

    ``avg_degree`` rescales the sampled degree sequence to hit a target
    mean; ``selfish_frac`` zeroes the out-degree of a random vertex
    slice, producing the paper's "selfish" vertices (Section 4.4).
    """
    if num_vertices < 2:
        raise GraphError("power_law needs at least 2 vertices")
    if alpha <= 1.0:
        raise GraphError(f"alpha must exceed 1.0, got {alpha}")
    if not 0.0 <= selfish_frac < 1.0:
        raise GraphError("selfish_frac must be in [0, 1)")
    rng = _rng(seed)
    cap = max_degree if max_degree is not None else max(4, num_vertices // 2)
    base_deg = rng.zipf(alpha, size=num_vertices).astype(np.float64)
    base_deg = np.clip(base_deg, 0, cap)
    base_deg = np.maximum(base_deg - 1 + min_out_degree, 0)
    selfish = rng.random(num_vertices) < selfish_frac
    if powerlaw_in:
        # Popularity weights ~ rank^(-1/(alpha-1)) over a random
        # permutation, giving a heavy-tailed in-degree profile.
        ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
        weights = ranks ** (-1.0 / max(alpha - 1.0, 0.25))
        weights /= weights.sum()
        perm = rng.permutation(num_vertices)
    src = dst = np.empty(0, dtype=np.int64)
    # Duplicate (src, dst) samples collapse in dedup, so hitting a
    # requested average degree needs inflation; a couple of corrective
    # rounds converge well within tolerance.
    inflation = 1.0
    for _ in range(4):
        out_deg = base_deg
        if avg_degree is not None and out_deg.sum() > 0:
            scale = inflation * (avg_degree * num_vertices) / out_deg.sum()
            out_deg = np.maximum(np.round(out_deg * scale), min_out_degree)
            out_deg = np.clip(out_deg, 0, cap)
        out_deg = out_deg.astype(np.int64).copy()
        out_deg[selfish] = 0
        total = int(out_deg.sum())
        src = np.repeat(np.arange(num_vertices, dtype=np.int64), out_deg)
        if powerlaw_in:
            dst = perm[rng.choice(num_vertices, size=total, p=weights)]
        else:
            dst = rng.integers(0, num_vertices, size=total, dtype=np.int64)
        keep = src != dst
        src, dst = src[keep], dst[keep]
        keys = src * num_vertices + dst
        _, idx = np.unique(keys, return_index=True)
        idx.sort()
        src, dst = src[idx], dst[idx]
        if avg_degree is None or total == 0:
            break
        achieved = src.size / num_vertices
        if achieved >= 0.9 * avg_degree:
            break
        inflation *= avg_degree / max(achieved, 1e-9) * 1.05
    graph_name = name or f"power-law-a{alpha:g}"
    return Graph(num_vertices, src, dst, name=graph_name)


def social_network(num_vertices: int, avg_degree: float, seed: int = 0,
                   reciprocity: float = 0.5, alpha: float = 2.1,
                   selfish_frac: float = 0.02, name: str = "social") -> Graph:
    """Power-law graph with a reciprocated-edge fraction.

    LiveJournal-style follower graphs have many mutual links; adding the
    reverse of a random edge subset reduces the selfish-vertex fraction,
    which matters for Fig. 3's replica census.  Reciprocation never
    touches edges pointing at selfish vertices, so ``selfish_frac`` is
    preserved exactly.
    """
    base = power_law(num_vertices, alpha, seed=seed, avg_degree=avg_degree,
                     selfish_frac=selfish_frac, name=name)
    rng = _rng(seed + 1)
    m = base.num_edges
    selfish_mask = base.out_degrees() == 0
    pick = (rng.random(m) < reciprocity) & ~selfish_mask[base.targets]
    src = np.concatenate([base.sources, base.targets[pick]])
    dst = np.concatenate([base.targets, base.sources[pick]])
    keys = src * num_vertices + dst
    _, idx = np.unique(keys, return_index=True)
    idx.sort()
    return Graph(num_vertices, src[idx], dst[idx], name=name)


def road_network(rows: int, cols: int, seed: int = 0,
                 weight_mu: float = 0.4, weight_sigma: float = 1.2,
                 name: str = "road") -> Graph:
    """Planar grid lattice with bidirectional log-normal-weighted edges.

    Stands in for RoadCA; the paper synthesises SSSP weights from a
    log-normal distribution (mu=0.4, sigma=1.2) fitted to the Facebook
    interaction graph (Section 6.1), which we reuse directly.
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be >= 1")
    n = rows * cols
    src_list = []
    dst_list = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                src_list += [v, v + 1]
                dst_list += [v + 1, v]
            if r + 1 < rows:
                src_list += [v, v + cols]
                dst_list += [v + cols, v]
    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    rng = _rng(seed)
    w = rng.lognormal(weight_mu, weight_sigma, size=src.size)
    return Graph(n, src, dst, w, name=name)


def bipartite(num_users: int, num_items: int, edges_per_user: int,
              seed: int = 0, name: str = "bipartite") -> Graph:
    """Bipartite rating graph (SYN-GL stand-in for ALS).

    Users are ids ``[0, num_users)``; items follow.  Each user rates
    ``~edges_per_user`` items with Zipf-popular item selection; both
    directions are materialised because ALS alternates sides.  Weights
    carry the rating values.
    """
    if num_users < 1 or num_items < 1:
        raise GraphError("bipartite sides must be non-empty")
    rng = _rng(seed)
    n = num_users + num_items
    counts = np.maximum(1, rng.poisson(edges_per_user, size=num_users))
    users = np.repeat(np.arange(num_users, dtype=np.int64), counts)
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks ** -0.8
    weights /= weights.sum()
    items = num_users + rng.choice(num_items, size=users.size, p=weights)
    ratings = rng.uniform(1.0, 5.0, size=users.size)
    keys = users * n + items
    _, idx = np.unique(keys, return_index=True)
    idx.sort()
    users, items, ratings = users[idx], items[idx], ratings[idx]
    src = np.concatenate([users, items])
    dst = np.concatenate([items, users])
    w = np.concatenate([ratings, ratings])
    return Graph(n, src, dst, w, name=name)


def community_graph(num_communities: int, community_size: int,
                    p_in: float = 0.2, p_out_edges: int = 2,
                    seed: int = 0, name: str = "community") -> Graph:
    """Planted-partition graph (DBLP stand-in for community detection)."""
    rng = _rng(seed)
    n = num_communities * community_size
    builder = GraphBuilder(num_vertices=n, name=name)
    for c in range(num_communities):
        base = c * community_size
        members = np.arange(base, base + community_size)
        within = max(1, int(p_in * community_size * community_size / 2))
        a = rng.choice(members, size=within)
        b = rng.choice(members, size=within)
        for u, v in zip(a, b):
            if u != v:
                builder.add_edge(int(u), int(v))
                builder.add_edge(int(v), int(u))
        for _ in range(p_out_edges * community_size // 4):
            u = int(rng.choice(members))
            v = int(rng.integers(0, n))
            if u != v:
                builder.add_edge(u, v)
                builder.add_edge(v, u)
    return builder.build()


# -- tiny structured graphs for tests ------------------------------------

def ring(num_vertices: int, name: str = "ring") -> Graph:
    """Directed cycle 0 -> 1 -> ... -> n-1 -> 0."""
    if num_vertices < 2:
        raise GraphError("ring needs >= 2 vertices")
    src = np.arange(num_vertices, dtype=np.int64)
    dst = (src + 1) % num_vertices
    return Graph(num_vertices, src, dst, name=name)


def star(num_leaves: int, inward: bool = True, name: str = "star") -> Graph:
    """Hub-and-spoke graph; vertex 0 is the hub."""
    if num_leaves < 1:
        raise GraphError("star needs >= 1 leaf")
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    hub = np.zeros(num_leaves, dtype=np.int64)
    if inward:
        return Graph(num_leaves + 1, leaves, hub, name=name)
    return Graph(num_leaves + 1, hub, leaves, name=name)


def complete(num_vertices: int, name: str = "complete") -> Graph:
    """Complete directed graph without self loops."""
    idx = np.arange(num_vertices, dtype=np.int64)
    src = np.repeat(idx, num_vertices)
    dst = np.tile(idx, num_vertices)
    keep = src != dst
    return Graph(num_vertices, src[keep], dst[keep], name=name)


def chain(num_vertices: int, weighted: bool = False, seed: int = 0,
          name: str = "chain") -> Graph:
    """Simple path 0 -> 1 -> ... -> n-1."""
    if num_vertices < 2:
        raise GraphError("chain needs >= 2 vertices")
    src = np.arange(num_vertices - 1, dtype=np.int64)
    dst = src + 1
    w = None
    if weighted:
        w = _rng(seed).uniform(0.5, 2.0, size=src.size)
    return Graph(num_vertices, src, dst, w, name=name)
