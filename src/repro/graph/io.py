"""Edge-list file I/O.

The format is the plain text edge list used by SNAP-style datasets
(``src<TAB>dst[<TAB>weight]`` per line, ``#`` comments), which is also
what the paper's input graphs ship as.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import GraphFormatError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph


def save_edge_list(graph: Graph, path: str | Path,
                   include_weights: bool = False) -> None:
    """Write a graph as a text edge list."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"# {graph.name}: |V|={graph.num_vertices} "
                 f"|E|={graph.num_edges}\n")
        for src, dst, weight in graph.edges():
            if include_weights:
                fh.write(f"{src}\t{dst}\t{weight:.6g}\n")
            else:
                fh.write(f"{src}\t{dst}\n")


def load_edge_list(path: str | Path, name: str | None = None,
                   num_vertices: int | None = None) -> Graph:
    """Parse a text edge list into a :class:`Graph`.

    Vertex ids must be non-negative integers; the vertex count defaults
    to ``max id + 1`` but can be forced larger for graphs with isolated
    trailing vertices.
    """
    path = Path(path)
    builder = GraphBuilder(num_vertices=num_vertices or 0,
                           name=name or path.stem)
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 2 or 3 fields, "
                    f"got {len(parts)}")
            try:
                src = int(parts[0])
                dst = int(parts[1])
                weight = float(parts[2]) if len(parts) == 3 else 1.0
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: unparsable edge {line!r}") from exc
            if src < 0 or dst < 0:
                raise GraphFormatError(
                    f"{path}:{lineno}: negative vertex id")
            builder.add_edge(src, dst, weight)
    return builder.build()
