"""Immutable directed graph in compressed-sparse-row form.

Vertices are dense integers ``0..num_vertices-1``.  Both directions are
indexed (CSR by source and CSC by target) because edge-cut systems
gather along in-edges while partitioners stream edges by source.  Edge
weights are optional; unweighted graphs report weight 1.0.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import GraphError


class Graph:
    """A frozen directed multigraph-free graph with optional weights."""

    def __init__(self, num_vertices: int, sources: np.ndarray,
                 targets: np.ndarray, weights: np.ndarray | None = None,
                 name: str = "graph"):
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape:
            raise GraphError("sources and targets must have equal length")
        if sources.size and (sources.min() < 0
                             or sources.max() >= num_vertices):
            raise GraphError("edge source out of range")
        if targets.size and (targets.min() < 0
                             or targets.max() >= num_vertices):
            raise GraphError("edge target out of range")
        if weights is None:
            weights = np.ones(sources.shape, dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != sources.shape:
                raise GraphError("weights must match edge count")
        self.name = name
        self.num_vertices = int(num_vertices)
        # Sort edges by (source, target) for the CSR index; keep the
        # permutation so the CSC index can refer back to edge ids.
        order = np.lexsort((targets, sources))
        self._src = sources[order]
        self._dst = targets[order]
        self._w = weights[order]
        self._out_offsets = self._build_offsets(self._src)
        # CSC (by target): a permutation of edge ids sorted by target.
        csc_order = np.lexsort((self._src, self._dst))
        self._in_edge_ids = csc_order
        self._in_offsets = self._build_offsets(self._dst[csc_order])

    def _build_offsets(self, sorted_keys: np.ndarray) -> np.ndarray:
        counts = np.bincount(sorted_keys, minlength=self.num_vertices) \
            if sorted_keys.size else np.zeros(self.num_vertices, dtype=np.int64)
        offsets = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return offsets

    # -- basic properties ----------------------------------------------

    @property
    def num_edges(self) -> int:
        return int(self._src.size)

    @property
    def sources(self) -> np.ndarray:
        """Edge sources, sorted by (source, target); read-only view."""
        return self._src

    @property
    def targets(self) -> np.ndarray:
        return self._dst

    @property
    def weights(self) -> np.ndarray:
        return self._w

    # -- adjacency ---------------------------------------------------------

    def out_degree(self, v: int) -> int:
        return int(self._out_offsets[v + 1] - self._out_offsets[v])

    def in_degree(self, v: int) -> int:
        return int(self._in_offsets[v + 1] - self._in_offsets[v])

    def out_degrees(self) -> np.ndarray:
        return np.diff(self._out_offsets)

    def in_degrees(self) -> np.ndarray:
        return np.diff(self._in_offsets)

    def out_edge_ids(self, v: int) -> np.ndarray:
        """Edge ids with source ``v`` (ids index sources/targets/weights)."""
        return np.arange(self._out_offsets[v], self._out_offsets[v + 1])

    def in_edge_ids(self, v: int) -> np.ndarray:
        """Edge ids with target ``v``."""
        return self._in_edge_ids[self._in_offsets[v]:self._in_offsets[v + 1]]

    def out_neighbors(self, v: int) -> np.ndarray:
        return self._dst[self._out_offsets[v]:self._out_offsets[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        ids = self.in_edge_ids(v)
        return self._src[ids]

    def edge(self, edge_id: int) -> tuple[int, int, float]:
        return (int(self._src[edge_id]), int(self._dst[edge_id]),
                float(self._w[edge_id]))

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate ``(source, target, weight)`` in (source, target) order."""
        for i in range(self.num_edges):
            yield (int(self._src[i]), int(self._dst[i]), float(self._w[i]))

    # -- derived graphs -----------------------------------------------------

    def with_weights(self, weights: np.ndarray) -> "Graph":
        """Return a copy of this graph with new edge weights.

        ``weights`` must be aligned with this graph's edge-id order.
        """
        return Graph(self.num_vertices, self._src.copy(), self._dst.copy(),
                     np.asarray(weights, dtype=np.float64).copy(),
                     name=self.name)

    def reversed(self) -> "Graph":
        """Return the transpose graph (every edge flipped)."""
        return Graph(self.num_vertices, self._dst.copy(), self._src.copy(),
                     self._w.copy(), name=f"{self.name}-rev")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Graph(name={self.name!r}, |V|={self.num_vertices}, "
                f"|E|={self.num_edges})")
