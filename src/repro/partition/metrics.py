"""Partitioning quality metrics (replication factor, balance).

Replication factor lambda is the paper's headline partitioning metric
(Figs. 10a, 14a): the average number of copies (master + replicas) each
vertex has across the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.partition.base import EdgeCutPartitioning, VertexCutPartitioning


def replica_node_sets(graph: Graph, partitioning) -> list[set[int]]:
    """For each vertex, the set of nodes hosting a copy of it.

    Edge-cut: the master node plus every node holding an out-edge's
    target master (those nodes materialise a local replica to read
    from).  Vertex-cut: every node hosting at least one adjacent edge,
    plus the master node.
    """
    n = graph.num_vertices
    hosts: list[set[int]] = [set() for _ in range(n)]
    if isinstance(partitioning, EdgeCutPartitioning):
        master_of = np.asarray(partitioning.master_of)
        for v in range(n):
            hosts[v].add(int(master_of[v]))
        src, dst = graph.sources, graph.targets
        src_nodes = master_of[src]
        dst_nodes = master_of[dst]
        for eid in np.flatnonzero(src_nodes != dst_nodes):
            hosts[int(src[eid])].add(int(dst_nodes[eid]))
    elif isinstance(partitioning, VertexCutPartitioning):
        edge_node = np.asarray(partitioning.edge_node)
        master_of = np.asarray(partitioning.master_of)
        src, dst = graph.sources, graph.targets
        for eid in range(graph.num_edges):
            node = int(edge_node[eid])
            hosts[int(src[eid])].add(node)
            hosts[int(dst[eid])].add(node)
        for v in range(n):
            hosts[v].add(int(master_of[v]))
    else:
        raise PartitionError(f"unknown partitioning type: "
                             f"{type(partitioning).__name__}")
    return hosts


def replication_factor(graph: Graph, partitioning) -> float:
    """Average copies per vertex (lambda in the partitioning papers)."""
    if graph.num_vertices == 0:
        return 0.0
    hosts = replica_node_sets(graph, partitioning)
    return sum(len(h) for h in hosts) / graph.num_vertices


def vertex_balance(graph: Graph, partitioning) -> float:
    """Max/mean ratio of master-vertex counts across nodes."""
    if isinstance(partitioning, EdgeCutPartitioning):
        counts = np.bincount(np.asarray(partitioning.master_of),
                             minlength=partitioning.num_nodes)
    else:
        counts = np.bincount(np.asarray(partitioning.master_of),
                             minlength=partitioning.num_nodes)
    mean = counts.mean()
    return float(counts.max() / mean) if mean > 0 else 1.0


def edge_balance(graph: Graph, partitioning) -> float:
    """Max/mean ratio of edge counts across nodes."""
    if isinstance(partitioning, EdgeCutPartitioning):
        master_of = np.asarray(partitioning.master_of)
        counts = np.bincount(master_of[graph.targets],
                             minlength=partitioning.num_nodes)
    else:
        counts = np.bincount(np.asarray(partitioning.edge_node),
                             minlength=partitioning.num_nodes)
    mean = counts.mean()
    return float(counts.max() / mean) if mean > 0 else 1.0


@dataclass(frozen=True)
class PartitionReport:
    """Summary row for the partitioning benchmarks."""

    strategy: str
    num_nodes: int
    replication_factor: float
    vertex_balance: float
    edge_balance: float


def report(graph: Graph, partitioning) -> PartitionReport:
    return PartitionReport(
        strategy=partitioning.strategy,
        num_nodes=partitioning.num_nodes,
        replication_factor=replication_factor(graph, partitioning),
        vertex_balance=vertex_balance(graph, partitioning),
        edge_balance=edge_balance(graph, partitioning),
    )
