"""Hash-based (random) edge-cut — the Cyclops/Hama default.

Vertices are spread by a stable hash, which balances vertex counts well
on natural graphs and is the paper's default partitioning for the
edge-cut experiments (Sections 3.1, 6.2-6.9).
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.partition.base import EdgeCutPartitioning
from repro.utils.hashing import stable_hash


def hash_edge_cut(graph: Graph, num_nodes: int,
                  seed: int = 0) -> EdgeCutPartitioning:
    """Assign each vertex to ``hash(v) mod num_nodes``."""
    ids = np.arange(graph.num_vertices, dtype=np.int64)
    # Vectorised splitmix64 (mirrors repro.utils.hashing.stable_hash).
    mask = np.uint64(0xFFFFFFFFFFFFFFFF)
    x = (ids.astype(np.uint64)
         + np.uint64(0x9E3779B97F4A7C15)
         + np.uint64((seed * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF))
    with np.errstate(over="ignore"):
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9) & mask
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB) & mask
        x = x ^ (x >> np.uint64(31))
    master_of = (x % np.uint64(num_nodes)).astype(np.int64)
    # Keep the scalar and vector hash implementations honest.
    if graph.num_vertices:
        v0 = graph.num_vertices - 1
        assert int(master_of[v0]) == stable_hash(v0, seed) % num_nodes
    part = EdgeCutPartitioning(num_nodes=num_nodes, master_of=master_of,
                               strategy="hash")
    part.validate(graph)
    return part
