"""Hybrid-cut — PowerLyra's differentiated partitioning [13].

Hybrid-cut treats skewed graphs differently by vertex *in-degree*:

* a **low-degree** vertex keeps all of its in-edges on one node (its
  hash node), edge-cut style, so its gather is entirely local;
* a **high-degree** vertex (in-degree above the threshold) has its
  in-edges distributed by the *source* endpoint's hash, vertex-cut
  style, so no single node drowns in a celebrity's fan-in.

This gives the lowest replication factor of the three vertex-cuts (5.56
for Twitter on 50 nodes, Fig. 14a) and is the paper's default for the
PowerLyra experiments — also the *worst case* for Imitator, since fewer
existing replicas are available for fault tolerance (Section 6.10).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.partition.base import (
    VertexCutPartitioning,
    assign_masters_for_vertex_cut,
)
from repro.partition.hash_edge_cut import hash_edge_cut


def hybrid_cut(graph: Graph, num_nodes: int, seed: int = 0,
               threshold: int = 100) -> VertexCutPartitioning:
    """PowerLyra hybrid-cut with the standard in-degree threshold.

    ``threshold`` is PowerLyra's default of 100; the scaled stand-in
    graphs keep enough >100-in-degree vertices for the differentiation
    to matter.
    """
    if num_nodes < 1:
        raise PartitionError("num_nodes must be >= 1")
    if threshold < 0:
        raise PartitionError("threshold must be >= 0")
    in_deg = graph.in_degrees()
    high = in_deg > threshold
    # Reuse the vectorised stable hash from the edge-cut module for
    # per-vertex hashing.
    vhash = hash_edge_cut(graph, num_nodes, seed=seed).master_of
    src, dst = graph.sources, graph.targets
    edge_node = np.where(high[dst], vhash[src], vhash[dst])
    master_of = assign_masters_for_vertex_cut(graph, edge_node, num_nodes,
                                              seed=seed)
    part = VertexCutPartitioning(num_nodes=num_nodes, edge_node=edge_node,
                                 master_of=master_of, strategy="hybrid")
    part.validate(graph)
    return part
