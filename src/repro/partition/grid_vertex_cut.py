"""Grid (constrained) vertex-cut — GraphBuilder's 2-D scheme [23].

Nodes are arranged in an r x c grid.  Each vertex hashes to one grid
cell and its *constraint set* is that cell's full row and column; an
edge must land in the intersection of its endpoints' constraint sets,
which is always non-empty (>= 2 cells in a proper grid).  This caps any
vertex's replica spread at r + c - 1 nodes, giving a replication factor
between random's and hybrid's (8.34 for Twitter on 50 nodes, Fig. 14a).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.partition.base import (
    VertexCutPartitioning,
    assign_masters_for_vertex_cut,
)
from repro.utils.hashing import stable_hash


def _grid_shape(num_nodes: int) -> tuple[int, int]:
    """Pick the most square r x c factorisation of ``num_nodes``."""
    best = (1, num_nodes)
    for rows in range(1, int(num_nodes ** 0.5) + 1):
        if num_nodes % rows == 0:
            best = (rows, num_nodes // rows)
    return best


def grid_vertex_cut(graph: Graph, num_nodes: int,
                    seed: int = 0) -> VertexCutPartitioning:
    """Constrained 2-D grid placement of edges."""
    if num_nodes < 1:
        raise PartitionError("num_nodes must be >= 1")
    rows, cols = _grid_shape(num_nodes)
    n = graph.num_vertices
    # Vertex -> home cell.
    home = np.array([stable_hash(v, salt=seed) % num_nodes
                     for v in range(n)], dtype=np.int64)
    home_r = home // cols
    home_c = home % cols
    src, dst = graph.sources, graph.targets
    edge_node = np.empty(graph.num_edges, dtype=np.int64)
    for eid in range(graph.num_edges):
        u, v = int(src[eid]), int(dst[eid])
        # Constraint sets: row+column of each endpoint's home cell.
        # The canonical intersection contains the two "cross" cells
        # (row_u x col_v) and (row_v x col_u); pick deterministically.
        cell_a = int(home_r[u]) * cols + int(home_c[v])
        cell_b = int(home_r[v]) * cols + int(home_c[u])
        pick = stable_hash(u * 2_000_003 + v, salt=seed + 1) & 1
        edge_node[eid] = cell_a if pick == 0 else cell_b
    master_of = assign_masters_for_vertex_cut(graph, edge_node, num_nodes,
                                              seed=seed)
    part = VertexCutPartitioning(num_nodes=num_nodes, edge_node=edge_node,
                                 master_of=master_of, strategy="grid")
    part.validate(graph)
    return part
