"""Partitioning result types shared by every strategy.

An **edge-cut** (Section 2.1) assigns each *vertex* to one node; the
master keeps all of its edges locally and vertices are replicated onto
nodes that hold edges pointing at them.  A **vertex-cut** assigns each
*edge* to one node; vertices are replicated onto every node holding one
of their edges and one copy is designated master.

Both types carry enough to rebuild replica sets deterministically, and
both validate their own consistency (invariant P1 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.utils.hashing import hash_to_node


@dataclass
class EdgeCutPartitioning:
    """Vertex -> node assignment (p-way edge-cut)."""

    num_nodes: int
    #: ``master_of[v]`` is the node owning vertex ``v`` and all its edges.
    master_of: np.ndarray
    strategy: str = "edge-cut"

    @property
    def kind(self) -> str:
        return "edge-cut"

    def validate(self, graph: Graph) -> None:
        master_of = np.asarray(self.master_of)
        if master_of.shape != (graph.num_vertices,):
            raise PartitionError(
                f"master_of has shape {master_of.shape}, expected "
                f"({graph.num_vertices},)")
        if graph.num_vertices and (master_of.min() < 0
                                   or master_of.max() >= self.num_nodes):
            raise PartitionError("vertex assigned outside [0, num_nodes)")

    def masters_on(self, node: int) -> np.ndarray:
        return np.flatnonzero(np.asarray(self.master_of) == node)


@dataclass
class VertexCutPartitioning:
    """Edge -> node assignment (p-way vertex-cut)."""

    num_nodes: int
    #: ``edge_node[e]`` is the node owning edge id ``e`` (graph order).
    edge_node: np.ndarray
    #: ``master_of[v]`` is the node hosting the master copy of ``v``.
    master_of: np.ndarray
    strategy: str = "vertex-cut"

    @property
    def kind(self) -> str:
        return "vertex-cut"

    def validate(self, graph: Graph) -> None:
        edge_node = np.asarray(self.edge_node)
        master_of = np.asarray(self.master_of)
        if edge_node.shape != (graph.num_edges,):
            raise PartitionError(
                f"edge_node has shape {edge_node.shape}, expected "
                f"({graph.num_edges},)")
        if master_of.shape != (graph.num_vertices,):
            raise PartitionError("master_of length mismatch")
        if graph.num_edges and (edge_node.min() < 0
                                or edge_node.max() >= self.num_nodes):
            raise PartitionError("edge assigned outside [0, num_nodes)")
        if graph.num_vertices and (master_of.min() < 0
                                   or master_of.max() >= self.num_nodes):
            raise PartitionError("master assigned outside [0, num_nodes)")

    def edges_on(self, node: int) -> np.ndarray:
        return np.flatnonzero(np.asarray(self.edge_node) == node)


def assign_masters_for_vertex_cut(graph: Graph, edge_node: np.ndarray,
                                  num_nodes: int,
                                  seed: int = 0) -> np.ndarray:
    """Pick a master node per vertex from the nodes hosting its edges.

    The hash node is used when it already hosts one of the vertex's
    edges (no extra replica needed); otherwise the hosting node chosen
    deterministically by a stable per-vertex hash.  Isolated vertices
    fall back to their hash node.
    """
    n = graph.num_vertices
    edge_node = np.asarray(edge_node)
    hosts: list[set[int]] = [set() for _ in range(n)]
    src, dst = graph.sources, graph.targets
    for eid in range(graph.num_edges):
        node = int(edge_node[eid])
        hosts[int(src[eid])].add(node)
        hosts[int(dst[eid])].add(node)
    master_of = np.empty(n, dtype=np.int64)
    for v in range(n):
        hashed = hash_to_node(v, num_nodes, salt=seed)
        hosting = hosts[v]
        if not hosting or hashed in hosting:
            master_of[v] = hashed
        else:
            ordered = sorted(hosting,
                             key=lambda node: (hash_to_node(
                                 v * 1_000_003 + node, 1 << 30), node))
            master_of[v] = ordered[0]
    return master_of


def make_partitioner(strategy):
    """Resolve a :class:`~repro.config.PartitionStrategy` to a callable.

    The callable signature is ``fn(graph, num_nodes, seed=0)`` returning
    the matching partitioning type.
    """
    from repro.config import PartitionStrategy
    from repro.partition.fennel import fennel_edge_cut
    from repro.partition.grid_vertex_cut import grid_vertex_cut
    from repro.partition.hash_edge_cut import hash_edge_cut
    from repro.partition.hybrid_cut import hybrid_cut
    from repro.partition.random_vertex_cut import random_vertex_cut

    table = {
        PartitionStrategy.HASH_EDGE_CUT: hash_edge_cut,
        PartitionStrategy.FENNEL_EDGE_CUT: fennel_edge_cut,
        PartitionStrategy.RANDOM_VERTEX_CUT: random_vertex_cut,
        PartitionStrategy.GRID_VERTEX_CUT: grid_vertex_cut,
        PartitionStrategy.HYBRID_CUT: hybrid_cut,
    }
    try:
        return table[strategy]
    except KeyError:
        raise PartitionError(f"unknown strategy: {strategy}") from None
