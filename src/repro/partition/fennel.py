"""Fennel streaming heuristic edge-cut [20] (Section 6.6).

Vertices arrive in a stream; each is greedily placed on the node
maximising (neighbors already there) minus a superlinear load penalty:

    score(v, i) = |N(v) cap S_i| - gamma * nu * |S_i|^(gamma-1)

with the paper-standard gamma = 1.5 and nu = sqrt(p) * m / n^1.5.
A hard balance slack keeps any node below ``balance_slack * n/p``
vertices.  Compared with hash partitioning this slashes the replication
factor (the paper reports 1.61 / 3.84 / 5.09 for GWeb / LJournal /
Wiki on 50 nodes, Fig. 10a), at the cost of more replica-less vertices
needing FT replicas.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.partition.base import EdgeCutPartitioning
from repro.utils.rng import SeededRng


def fennel_edge_cut(graph: Graph, num_nodes: int, seed: int = 0,
                    gamma: float = 1.5, balance_slack: float = 1.1,
                    passes: int = 3) -> EdgeCutPartitioning:
    """Fennel streaming partitioning with restreaming refinement.

    The first pass streams vertices in a random order; subsequent
    passes restream with full knowledge of the previous placement
    (each vertex is pulled out, rescored and reinserted), which is the
    standard way to close most of the gap to offline partitioners.
    """
    if num_nodes < 1:
        raise PartitionError("num_nodes must be >= 1")
    if passes < 1:
        raise PartitionError("passes must be >= 1")
    n = graph.num_vertices
    m = graph.num_edges
    master_of = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return EdgeCutPartitioning(num_nodes, master_of, strategy="fennel")
    nu = (num_nodes ** 0.5) * m / max(n ** gamma, 1.0)
    capacity = balance_slack * n / num_nodes + 1
    loads = np.zeros(num_nodes, dtype=np.int64)
    rng = SeededRng(seed, "fennel-order")
    order = list(range(n))
    rng.shuffle(order)
    for pass_no in range(passes):
        moved = 0
        for v in order:
            current = master_of[v]
            if current >= 0:
                loads[current] -= 1
            neighbors = np.concatenate([graph.out_neighbors(v),
                                        graph.in_neighbors(v)])
            placed = master_of[neighbors]
            placed = placed[placed >= 0]
            gain = np.zeros(num_nodes, dtype=np.float64)
            if placed.size:
                counts = np.bincount(placed, minlength=num_nodes)
                gain += counts
            penalty = gamma * nu * np.power(loads.astype(np.float64),
                                            gamma - 1.0)
            score = gain - penalty
            score[loads >= capacity] = -np.inf
            best = int(np.argmax(score))
            if best != current:
                moved += 1
            master_of[v] = best
            loads[best] += 1
        if pass_no > 0 and moved == 0:
            break  # converged
    part = EdgeCutPartitioning(num_nodes=num_nodes, master_of=master_of,
                               strategy="fennel")
    part.validate(graph)
    return part


def fennel_rebalance(graph: Graph, master_of, nodes, seed: int = 0,
                     gamma: float = 1.5, balance_slack: float = 1.1
                     ) -> tuple[list[int], list[tuple[int, int]]]:
    """Incrementally restream masters onto a changed node set.

    The elastic-membership counterpart of :func:`fennel_edge_cut`
    (DESIGN.md §14): instead of restreaming the whole graph after a
    join or drain, only the masters that *must* move do —

    1. masters stranded on nodes absent from ``nodes`` (a drain) are
       restreamed by Fennel score in a seeded order;
    2. over-capacity nodes shed masters until they fit under
       ``balance_slack * n / p' + 1`` (a freshly joined node starts
       empty, so shedding is what pulls load onto it).

    ``nodes`` may be non-contiguous ids (elastic joins allocate above
    the standby pool).  Returns ``(new_master_of, moves)`` where
    ``moves`` lists ``(vertex, new_node)`` sorted by vertex id —
    exactly the masters whose node changed.  Deterministic under
    ``seed``.
    """
    node_ids = sorted(set(int(n) for n in nodes))
    if not node_ids:
        raise PartitionError("rebalance target node set is empty")
    index = {nid: i for i, nid in enumerate(node_ids)}
    p = len(node_ids)
    n = graph.num_vertices
    m = graph.num_edges
    new_master = [int(x) for x in master_of]
    if len(new_master) != n:
        raise PartitionError(
            f"master_of has {len(new_master)} entries for {n} vertices")
    if n == 0:
        return new_master, []
    nu = (p ** 0.5) * m / max(n ** gamma, 1.0)
    capacity = balance_slack * n / p + 1
    loads = np.zeros(p, dtype=np.float64)
    for node in new_master:
        i = index.get(node)
        if i is not None:
            loads[i] += 1
    rng = SeededRng(seed, "fennel-rebalance")

    def place(v: int) -> int:
        neighbors = np.concatenate([graph.out_neighbors(v),
                                    graph.in_neighbors(v)])
        gain = np.zeros(p, dtype=np.float64)
        for u in neighbors.tolist():
            i = index.get(new_master[u])
            if i is not None:
                gain[i] += 1
        score = gain - gamma * nu * np.power(loads, gamma - 1.0)
        score[loads >= capacity] = -np.inf
        # Total capacity strictly exceeds n, so a non-full node always
        # exists and the argmax is never over an all -inf row.
        return node_ids[int(np.argmax(score))]

    # Phase 1: masters stranded on removed nodes must move.
    must = [v for v in range(n) if new_master[v] not in index]
    rng.shuffle(must)
    for v in must:
        dst = place(v)
        new_master[v] = dst
        loads[index[dst]] += 1
    # Phase 2: shed from over-capacity nodes (joins pull load here).
    order = list(range(n))
    rng.shuffle(order)
    for v in order:
        cur = index.get(new_master[v])
        if cur is None or loads[cur] <= capacity:
            continue
        loads[cur] -= 1
        dst = place(v)
        new_master[v] = dst
        loads[index[dst]] += 1
    moves = [(v, new_master[v]) for v in range(n)
             if new_master[v] != int(master_of[v])]
    return new_master, moves
