"""Fennel streaming heuristic edge-cut [20] (Section 6.6).

Vertices arrive in a stream; each is greedily placed on the node
maximising (neighbors already there) minus a superlinear load penalty:

    score(v, i) = |N(v) cap S_i| - gamma * nu * |S_i|^(gamma-1)

with the paper-standard gamma = 1.5 and nu = sqrt(p) * m / n^1.5.
A hard balance slack keeps any node below ``balance_slack * n/p``
vertices.  Compared with hash partitioning this slashes the replication
factor (the paper reports 1.61 / 3.84 / 5.09 for GWeb / LJournal /
Wiki on 50 nodes, Fig. 10a), at the cost of more replica-less vertices
needing FT replicas.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.partition.base import EdgeCutPartitioning
from repro.utils.rng import SeededRng


def fennel_edge_cut(graph: Graph, num_nodes: int, seed: int = 0,
                    gamma: float = 1.5, balance_slack: float = 1.1,
                    passes: int = 3) -> EdgeCutPartitioning:
    """Fennel streaming partitioning with restreaming refinement.

    The first pass streams vertices in a random order; subsequent
    passes restream with full knowledge of the previous placement
    (each vertex is pulled out, rescored and reinserted), which is the
    standard way to close most of the gap to offline partitioners.
    """
    if num_nodes < 1:
        raise PartitionError("num_nodes must be >= 1")
    if passes < 1:
        raise PartitionError("passes must be >= 1")
    n = graph.num_vertices
    m = graph.num_edges
    master_of = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return EdgeCutPartitioning(num_nodes, master_of, strategy="fennel")
    nu = (num_nodes ** 0.5) * m / max(n ** gamma, 1.0)
    capacity = balance_slack * n / num_nodes + 1
    loads = np.zeros(num_nodes, dtype=np.int64)
    rng = SeededRng(seed, "fennel-order")
    order = list(range(n))
    rng.shuffle(order)
    for pass_no in range(passes):
        moved = 0
        for v in order:
            current = master_of[v]
            if current >= 0:
                loads[current] -= 1
            neighbors = np.concatenate([graph.out_neighbors(v),
                                        graph.in_neighbors(v)])
            placed = master_of[neighbors]
            placed = placed[placed >= 0]
            gain = np.zeros(num_nodes, dtype=np.float64)
            if placed.size:
                counts = np.bincount(placed, minlength=num_nodes)
                gain += counts
            penalty = gamma * nu * np.power(loads.astype(np.float64),
                                            gamma - 1.0)
            score = gain - penalty
            score[loads >= capacity] = -np.inf
            best = int(np.argmax(score))
            if best != current:
                moved += 1
            master_of[v] = best
            loads[best] += 1
        if pass_no > 0 and moved == 0:
            break  # converged
    part = EdgeCutPartitioning(num_nodes=num_nodes, master_of=master_of,
                               strategy="fennel")
    part.validate(graph)
    return part
