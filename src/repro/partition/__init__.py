"""Graph partitioning: edge-cut and vertex-cut strategy implementations."""

from repro.partition.base import (
    EdgeCutPartitioning,
    VertexCutPartitioning,
    make_partitioner,
)
from repro.partition.hash_edge_cut import hash_edge_cut
from repro.partition.fennel import fennel_edge_cut
from repro.partition.random_vertex_cut import random_vertex_cut
from repro.partition.grid_vertex_cut import grid_vertex_cut
from repro.partition.hybrid_cut import hybrid_cut
from repro.partition.metrics import (
    PartitionReport,
    edge_balance,
    replication_factor,
    report,
    vertex_balance,
)

__all__ = [
    "EdgeCutPartitioning",
    "VertexCutPartitioning",
    "make_partitioner",
    "hash_edge_cut",
    "fennel_edge_cut",
    "random_vertex_cut",
    "grid_vertex_cut",
    "hybrid_cut",
    "PartitionReport",
    "replication_factor",
    "edge_balance",
    "vertex_balance",
    "report",
]
