"""Random vertex-cut — the PowerGraph default [11].

Each edge is hashed (by its endpoint pair) onto a node.  Simple and
perfectly edge-balanced, but every vertex fans out replicas across many
nodes: the paper measures a replication factor of 15.96 for Twitter on
50 nodes (Fig. 14a), the worst of the three vertex-cuts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.partition.base import (
    VertexCutPartitioning,
    assign_masters_for_vertex_cut,
)


def random_vertex_cut(graph: Graph, num_nodes: int,
                      seed: int = 0) -> VertexCutPartitioning:
    """Assign each edge to ``hash(src, dst) mod num_nodes``."""
    if num_nodes < 1:
        raise PartitionError("num_nodes must be >= 1")
    src = graph.sources.astype(np.uint64)
    dst = graph.targets.astype(np.uint64)
    mask = np.uint64(0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        x = (src * np.uint64(0x9E3779B97F4A7C15)
             + dst * np.uint64(0xBF58476D1CE4E5B9)
             + np.uint64((seed * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF))
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9) & mask
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB) & mask
        x = x ^ (x >> np.uint64(31))
    edge_node = (x % np.uint64(num_nodes)).astype(np.int64)
    master_of = assign_masters_for_vertex_cut(graph, edge_node, num_nodes,
                                              seed=seed)
    part = VertexCutPartitioning(num_nodes=num_nodes, edge_node=edge_node,
                                 master_of=master_of, strategy="random")
    part.validate(graph)
    return part
