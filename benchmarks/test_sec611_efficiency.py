"""Section 6.11 — theoretical efficiency under Young's model.

Using the measured per-payment costs (one checkpoint vs one interval of
replication overhead) and recovery times for PageRank on Twitter, the
paper derives optimal intervals of 9,768 s (CKPT) vs 623 s (REP) and
efficiencies of 98.44% vs 99.90%.
"""

from __future__ import annotations

from _harness import print_table, run

from repro.ft.young import efficiency
from repro.metrics.report import execution_time


def test_sec611_efficiency(benchmark):
    out = {}

    def experiment():
        _, base = run("twitter", ft="none", partition="hybrid_cut",
                      iterations=3)
        _, rep = run("twitter", ft="replication", partition="hybrid_cut",
                     iterations=3)
        _, ckpt = run("twitter", ft="checkpoint", partition="hybrid_cut",
                      iterations=3)
        iters = len(base.iteration_stats)
        # Payment per fault-tolerance "interval": one checkpoint, or
        # one iteration's worth of replication overhead.
        ckpt_payment = (sum(s.checkpoint_s for s in ckpt.iteration_stats)
                        / iters)
        rep_payment = max(1e-4, (execution_time(rep)
                                 - execution_time(base)) / iters)
        _, reb = run("twitter", ft="replication", partition="hybrid_cut",
                     iterations=3, recovery="migration",
                     failures=((1, (5,)),))
        _, ckpt_fail = run("twitter", ft="checkpoint",
                           partition="hybrid_cut", iterations=3,
                           failures=((1, (5,)),))
        rep_recovery = reb.recoveries[0].total_s
        ckpt_recovery = (ckpt_fail.recoveries[0].total_s
                         + ckpt_fail.recoveries[0].replayed_iterations
                         * ckpt_fail.avg_iteration_time_s())
        out["ckpt"] = efficiency("CKPT", ckpt_payment, ckpt_recovery)
        out["rep"] = efficiency("REP", rep_payment, rep_recovery)
        return out

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for key in ("ckpt", "rep"):
        rep = out[key]
        rows.append([rep.scheme, rep.payment_cost_s,
                     rep.optimal_interval_s, rep.recovery_cost_s,
                     f"{rep.efficiency:.4%}"])
    print_table("Section 6.11: Young's-model efficiency "
                "(PageRank / Twitter, MTBF 7.3 days)",
                ["scheme", "payment (s)", "optimal interval (s)",
                 "recovery (s)", "efficiency"], rows)

    ckpt, rep = out["ckpt"], out["rep"]
    # Paper shape: REP's payment is orders of magnitude cheaper, its
    # optimal interval far shorter, and its efficiency higher — but
    # both efficiencies are high because failures are rare.
    assert rep.payment_cost_s < ckpt.payment_cost_s / 10
    assert rep.optimal_interval_s < ckpt.optimal_interval_s
    assert rep.efficiency > ckpt.efficiency
    assert ckpt.efficiency > 0.95
    assert rep.efficiency > 0.995
