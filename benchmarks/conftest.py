"""Make the shared harness importable and force verbose prints."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
