"""Elastic membership benchmark: rebalance cost and adaptive-K control.

The acceptance scenario for the elastic control plane (DESIGN.md §14):
a PageRank job rides through the issue's full churn schedule — two
joins, a drain, a flap, then a two-kill burst — while the adaptive
replication floor reacts.  Three configurations run on the simulator
(and the churn schedule once more on the multiprocessing backend):

* ``static``        — failure-free fixed-K baseline;
* ``static_kills``  — fixed K, kill burst only (recovery-latency
  reference);
* ``adaptive``      — full churn schedule with the adaptive floor
  (``ft_level_min=1 .. ft_level_max=3``).

Results — rebalance cost (masters moved, bytes shipped, simulated
transfer seconds), per-recovery latency breakdowns, and the complete
floor-event trajectory — land in ``BENCH_elastic_membership.json``.

Gates:

* every elastic run stays **bit-identical** to the static baseline;
* the adaptive floor **rises after the kill burst and relaxes back to
  the resting floor after quiet**, asserted from the JSON artifact the
  CI job uploads (not from in-memory state);
* rebalance cost is recorded and non-zero whenever masters moved.
"""

from __future__ import annotations

import json
import multiprocessing
from pathlib import Path

import pytest

from repro.exec.base import BackendSpec
from repro.exec.simulator import SimulatorBackend
from repro.graph import generators

BENCH_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_elastic_membership.json"

NUM_VERTICES = 600
NUM_NODES = 6
HORIZON = 26

#: Two joins, one drain, one flap (iterations 2/4/6) ...
MEMBERSHIP = ((2, "join", None, 2), (4, "drain", 1), (6, "flap", 2))
#: ... then a kill burst: two nodes lost on consecutive iterations.
KILL_BURST = ((10, (2,), "compute"), (11, (3,), "compute"))

BASE = dict(algorithm="pagerank", num_nodes=NUM_NODES, ft_level=1,
            max_iterations=HORIZON, seed=11, num_standby=3)

SPECS = {
    "static": BackendSpec(**BASE),
    "static_kills": BackendSpec(**BASE, failures=KILL_BURST),
    "adaptive": BackendSpec(**BASE, ft_level_min=1, ft_level_max=3,
                            membership=MEMBERSHIP, failures=KILL_BURST),
}


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(NUM_VERTICES, alpha=2.1, seed=3,
                                avg_degree=6.0, name="elastic-bench")


def _record(result):
    membership = result.extra.get("membership", {})
    return {
        "backend": result.backend,
        "iterations": result.iterations,
        "wall_time_s": result.wall_s,
        "messages": result.total_msgs,
        "bytes": result.total_bytes,
        "failures_recovered": result.failures_recovered,
        "rebalance": {
            "moves": membership.get("moves", 0),
            "bytes": membership.get("bytes", 0),
            "transfer_sim_s": membership.get("transfer_sim_s", 0.0),
            "joins": membership.get("joins", 0),
            "drains": membership.get("drains", 0),
            "flaps": membership.get("flaps", 0),
            "epoch": membership.get("epoch", 0),
        },
        "floor_events": [list(event) for event in
                         membership.get("floor_events", [])],
        "leader_term": membership.get("leader_term", 0),
    }


@pytest.fixture(scope="module")
def results(graph):
    """Run all scenarios once, write the artifact, hand back the runs."""
    backend = SimulatorBackend()
    runs = {name: backend.run(graph, spec)
            for name, spec in SPECS.items()}
    mp_name = None
    if "fork" in multiprocessing.get_all_start_methods():
        from repro.exec.mp import MultiprocessingBackend
        with MultiprocessingBackend() as mp:
            runs["adaptive_mp"] = mp.run(graph, SPECS["adaptive"])
        mp_name = "adaptive_mp"
    payload = {
        "figure": "elastic_membership",
        "scenarios": {name: _record(run) for name, run in runs.items()},
        "recovery_latency_s": {
            name: [rec["reconstruct_s"] + rec["detection_s"]
                   + rec["replay_s"]
                   for rec in run.extra.get("recoveries", [])]
            for name, run in runs.items()
            if name in ("static_kills", "adaptive")},
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")
    return runs, mp_name


class TestElasticMembershipBench:
    def test_elastic_runs_bit_identical_to_static(self, results):
        runs, mp_name = results
        base = runs["static"].values
        assert runs["static_kills"].values == base
        assert runs["adaptive"].values == base
        if mp_name:
            assert runs[mp_name].values == base

    def test_rebalance_cost_recorded(self, results):
        runs, _ = results
        payload = json.loads(BENCH_PATH.read_text())
        cost = payload["scenarios"]["adaptive"]["rebalance"]
        assert cost["joins"] == 2
        assert cost["flaps"] == 1
        assert cost["moves"] > 0
        assert cost["bytes"] > 0
        assert cost["transfer_sim_s"] > 0.0

    def test_adaptive_floor_rises_then_relaxes(self, results):
        """Asserted from the JSON artifact, as the CI job consumes it."""
        payload = json.loads(BENCH_PATH.read_text())
        events = payload["scenarios"]["adaptive"]["floor_events"]
        kinds = [kind for _it, kind, _floor in events]
        assert "failure" in kinds
        burst_start = KILL_BURST[0][0]
        risen = [floor for it, kind, floor in events
                 if kind == "failure" and it >= burst_start]
        assert risen and max(risen) >= 2  # K rose after the kill burst
        relaxes = [floor for it, kind, floor in events
                   if kind == "relax" and it > burst_start]
        assert relaxes  # ... and relaxed again after quiet
        assert events[-1][1] == "relax"
        assert events[-1][2] == 1  # back at the resting floor

    def test_recovery_latency_vs_static_k(self, results):
        payload = json.loads(BENCH_PATH.read_text())
        latency = payload["recovery_latency_s"]
        assert len(latency["static_kills"]) == 2
        assert len(latency["adaptive"]) == 2
        assert all(value > 0 for series in latency.values()
                   for value in series)
