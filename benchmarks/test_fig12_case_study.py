"""Fig. 12 — case study: PageRank on LJournal, 20 iterations, one
failure between iteration 6 and 7.

The paper's timeline: ~7 s to detect the failure in every scheme;
Migration recovers in ~2.6 s, Rebirth in ~8.8 s, CKPT/4 in ~45 s and
then replays 2 lost iterations.  After recovery Rebirth resumes at full
speed while Migration runs slightly slower (one machine less).
"""

from __future__ import annotations

from _harness import print_table, run

from repro.metrics.report import execution_time

ITERS = 20
CKPT_INTERVAL = 4
#: Crash right after iteration 6 commits, detected leaving the barrier.
FAILURE = ((6, (5,), "after_commit"),)


def timeline(result):
    """(iteration, sim-clock at barrier) series for plotting."""
    return [(s.iteration, s.sim_clock_s) for s in result.iteration_stats]


def test_fig12_case_study(benchmark):
    out = {}

    def experiment():
        _, base = run("ljournal", ft="none", iterations=ITERS)
        _, rep_reb = run("ljournal", ft="replication", recovery="rebirth",
                         iterations=ITERS, failures=FAILURE)
        _, rep_mig = run("ljournal", ft="replication",
                         recovery="migration", iterations=ITERS,
                         failures=FAILURE)
        _, ckpt = run("ljournal", ft="checkpoint",
                      checkpoint_interval=CKPT_INTERVAL, iterations=ITERS,
                      failures=FAILURE)
        out.update(base=base, reb=rep_reb, mig=rep_mig, ckpt=ckpt)
        return out

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    base, reb, mig, ckpt = out["base"], out["reb"], out["mig"], out["ckpt"]

    rows = []
    for label, result in (("BASE", base), ("REP+Rebirth", reb),
                          ("REP+Migration", mig),
                          (f"CKPT/{CKPT_INTERVAL}", ckpt)):
        recovery = result.recoveries[0] if result.recoveries else None
        rows.append([
            label,
            result.iteration_stats[-1].sim_clock_s,
            recovery.detection_s if recovery else 0.0,
            recovery.total_s if recovery else 0.0,
            recovery.replayed_iterations if recovery else 0,
        ])
    print_table(
        "Fig. 12: end-to-end timeline, PageRank/LJournal, failure @ it.6",
        ["config", "finish (s)", "detection (s)", "recovery (s)",
         "replayed iters"], rows)
    print("timeline (iteration, sim-clock):")
    for label, result in (("REB", reb), ("MIG", mig), ("CKPT", ckpt)):
        points = timeline(result)
        marks = ", ".join(f"{i}:{t:.0f}" for i, t in points[::4])
        print(f"  {label:5s} {marks}")

    reb_rec = reb.recoveries[0]
    mig_rec = mig.recoveries[0]
    ckpt_rec = ckpt.recoveries[0]
    # Detection spans ~7 s in every scheme.
    for rec in (reb_rec, mig_rec, ckpt_rec):
        assert abs(rec.detection_s - 7.0) < 0.5
    # Migration recovers fastest, CKPT slowest by a wide margin.
    assert mig_rec.total_s < reb_rec.total_s
    ckpt_total = (ckpt_rec.total_s + ckpt_rec.replayed_iterations
                  * ckpt.avg_iteration_time_s())
    assert ckpt_total > 3 * reb_rec.total_s
    # CKPT/4 replays 2 lost iterations, exactly as the paper reports
    # ("it still has to replay 2 lost iterations"): the last snapshot
    # covers iterations 0-3, iterations 4-5 are lost, and the crashed
    # iteration 6 is re-executed either way.
    assert ckpt_rec.replayed_iterations == 2
    # Post-recovery pace: Migration's per-iteration time is no faster
    # than Rebirth's (one machine fewer), and both finish near BASE +
    # detection + recovery.
    reb_tail = [s.sim_time_s for s in reb.iteration_stats[-5:]]
    mig_tail = [s.sim_time_s for s in mig.iteration_stats[-5:]]
    assert sum(mig_tail) >= sum(reb_tail) * 0.98
    base_finish = execution_time(base)
    assert reb.iteration_stats[-1].sim_clock_s < base_finish + 30
