"""Message-reduction benchmark for the combining layer (DESIGN.md §15).

Not a figure from the paper — this measures the *implementation win*
of sender-side combining on the traffic pattern it targets: vertex-cut
partitions of power-law graphs, where every high-degree vertex fans
its mirror gather traffic across nodes and each mirror's local edges
fold into a single partial.

Every workload runs twice on the deterministic simulator — once with
``combining=True`` (the default: one folded partial per (node, master)
pair) and once with ``combining=False`` (the raw wire format shipping
every edge contribution as its own physical record).  Both runs are
required to agree on the *logical* tier — committed values, logical
record and byte counters, simulated time — so the only thing the knob
changes is physical packaging, and the reduction numbers below can't
hide a semantic drift.

Gates:

* ``test_physical_record_reduction`` — combining must cut physical
  gather records by at least 3x on every power-law vertex-cut
  workload (the ISSUE's acceptance floor; measured runs land between
  3.5x and 5.5x).
* ``test_logical_tier_parity`` — values, logical records, wire bytes
  and simulated time identical with the knob on or off.
* ``test_edge_cut_is_identity`` — edge-cut gathers never cross the
  wire, so the combine ratio must be exactly 1.0 there (non-vacuity:
  the counters only move where the design says they can).

Fixed seeds throughout; results land in ``BENCH_msg_reduction.json``
at the repo root.  Wall-clock speedup is recorded for the artifact but
not hard-gated: the in-process simulator never pays real
serialization, so the wall win (measured separately on the mp backend,
where encode/decode is real) shows up here only as noise.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.api import make_engine
from repro.graph import generators

BENCH_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_msg_reduction.json"

NUM_NODES = 6
VC_PARTITION = "random_vertex_cut"

#: (workload name) -> (vertices, avg degree, algorithm, iterations).
#: Average in-degree >= 12 per the ISSUE's workload spec: combining
#: pays off in proportion to local in-edges per mirror.
WORKLOADS = {
    "powerlaw-pagerank": (1500, 14.0, "pagerank", 6),
    "powerlaw-sssp": (1500, 14.0, "sssp", 8),
    "powerlaw-cc": (1500, 14.0, "cc", 8),
}

#: (workload, partition, combining) -> measurement record.
_RESULTS: dict[tuple[str, str, bool], dict] = {}
_GRAPHS: dict[str, object] = {}


def _graph(workload: str):
    if workload not in _GRAPHS:
        n, avg_degree, _, _ = WORKLOADS[workload]
        _GRAPHS[workload] = generators.power_law(
            n, alpha=2.0, seed=11, avg_degree=avg_degree,
            name=f"msgred{n}")
    return _GRAPHS[workload]


def _measure(workload: str, partition: str, combining: bool) -> dict:
    key = (workload, partition, combining)
    if key in _RESULTS:
        return _RESULTS[key]
    n, avg_degree, algorithm, iterations = WORKLOADS[workload]
    kwargs = {}
    if algorithm == "sssp":
        kwargs["algorithm_kwargs"] = {"source": 0}
    engine = make_engine(_graph(workload), algorithm,
                         num_nodes=NUM_NODES, partition=partition,
                         max_iterations=iterations, vectorized=True,
                         combining=combining, **kwargs)
    start = time.perf_counter()
    result = engine.run()
    wall_s = time.perf_counter() - start
    net = engine.cluster.network
    totals = net.totals
    _RESULTS[key] = {
        "workload": workload,
        "graph": f"power_law({n}, alpha=2.0, seed=11, "
                 f"avg_degree={avg_degree})",
        "algorithm": algorithm,
        "partition": partition,
        "combining": combining,
        "iterations": result.num_iterations,
        "wall_s": wall_s,
        "values_digest": hash(tuple(sorted(engine.values().items()))),
        "logical_records": totals.total_msgs,
        "wire_bytes": totals.total_bytes,
        "sim_time_s": result.total_sim_time_s,
        "gather_records_pre_combine": net.combine_pre,
        "gather_records_physical": net.combine_phys,
        "combine_ratio": result.combine_ratio,
        "combined_records": result.combined_records,
    }
    _flush()
    return _RESULTS[key]


def _flush() -> None:
    """Rewrite the JSON with every measurement taken so far."""
    runs = [_RESULTS[k] for k in sorted(_RESULTS, key=str)]
    summary = {}
    for name in WORKLOADS:
        on = _RESULTS.get((name, VC_PARTITION, True))
        off = _RESULTS.get((name, VC_PARTITION, False))
        if on and off:
            summary[name] = {
                "physical_record_reduction":
                    off["gather_records_physical"]
                    / max(on["gather_records_physical"], 1),
                "combine_ratio": on["combine_ratio"],
                "combined_records": on["combined_records"],
                "wall_speedup":
                    off["wall_s"] / max(on["wall_s"], 1e-9),
            }
    BENCH_PATH.write_text(json.dumps(
        {"figure": "msg_reduction",
         "workloads": {
             name: {"graph": f"power_law({n}, alpha=2.0, seed=11, "
                             f"avg_degree={deg})",
                    "algorithm": algo, "nodes": NUM_NODES,
                    "partition": VC_PARTITION, "iterations": iters}
             for name, (n, deg, algo, iters) in WORKLOADS.items()},
         "runs": runs, "summary": summary},
        indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_physical_record_reduction(workload):
    """The ISSUE's acceptance floor: >=3x fewer physical gather
    records on power-law vertex-cut with combining on."""
    on = _measure(workload, VC_PARTITION, combining=True)
    off = _measure(workload, VC_PARTITION, combining=False)
    # The pre-combine tier is mode-independent: with the knob off,
    # every would-be contribution ships as its own physical record.
    assert off["gather_records_physical"] == \
        off["gather_records_pre_combine"]
    assert on["gather_records_pre_combine"] == \
        off["gather_records_physical"]
    reduction = off["gather_records_physical"] / \
        max(on["gather_records_physical"], 1)
    print(f"\n{workload}: {off['gather_records_physical']} -> "
          f"{on['gather_records_physical']} physical gather records "
          f"({reduction:.2f}x), wall {off['wall_s']:.3f}s -> "
          f"{on['wall_s']:.3f}s")
    assert reduction >= 3.0
    assert on["combined_records"] > 0
    assert on["combine_ratio"] == pytest.approx(reduction)


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_logical_tier_parity(workload):
    """The knob may only change packaging: logical accounting and the
    committed fixpoint are bit-identical with combining on or off."""
    on = _measure(workload, VC_PARTITION, combining=True)
    off = _measure(workload, VC_PARTITION, combining=False)
    assert on["values_digest"] == off["values_digest"]
    assert on["iterations"] == off["iterations"]
    assert on["logical_records"] == off["logical_records"]
    assert on["wire_bytes"] == off["wire_bytes"]
    assert on["sim_time_s"] == off["sim_time_s"]


def test_edge_cut_is_identity():
    """Edge-cut partitions gather over local in-edges only — nothing
    to combine, ratio exactly 1.0, zero records saved."""
    on = _measure("powerlaw-pagerank", "hash_edge_cut", combining=True)
    off = _measure("powerlaw-pagerank", "hash_edge_cut",
                   combining=False)
    for rec in (on, off):
        assert rec["combine_ratio"] == 1.0
        assert rec["combined_records"] == 0
        assert rec["gather_records_pre_combine"] == \
            rec["gather_records_physical"]
    assert on["values_digest"] == off["values_digest"]
