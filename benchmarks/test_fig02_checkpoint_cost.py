"""Fig. 2 — the cost of checkpoint-based fault tolerance.

(a) one checkpoint vs one iteration for every workload of Table 1;
(b) overall overhead of checkpoint intervals 1/2/4 for PageRank on
    LJournal (paper: 89%, 51%, 26%);
(c) the recovery-time breakdown (reload / reconstruct / replay) against
    one iteration's runtime.
"""

from __future__ import annotations

from _harness import print_table, run

from repro.datasets import CYCLOPS_WORKLOADS
from repro.metrics.report import execution_time


def test_fig02a_checkpoint_vs_iteration(benchmark):
    rows = []

    def experiment():
        for algorithm, dataset in CYCLOPS_WORKLOADS:
            _, result = run(dataset, algorithm=algorithm, ft="checkpoint",
                            iterations=4)
            iter_s = result.avg_iteration_time_s()
            ckpt_s = (sum(s.checkpoint_s for s in result.iteration_stats)
                      / len(result.iteration_stats))
            rows.append([algorithm, dataset, iter_s, ckpt_s,
                         ckpt_s / iter_s])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Fig. 2a: cost of one checkpoint vs one iteration (seconds)",
        ["algorithm", "dataset", "iteration", "checkpoint", "ratio"],
        rows)
    # Paper: even the best case pays >55% of an iteration per
    # checkpoint; most pay multiples.
    assert all(row[4] > 0.55 for row in rows)
    assert sum(1 for row in rows if row[4] > 1.0) >= 4


def test_fig02b_interval_sweep(benchmark):
    rows = []

    def experiment():
        _, base = run("ljournal", ft="none", iterations=8)
        base_time = execution_time(base)
        for interval in (1, 2, 4):
            _, result = run("ljournal", ft="checkpoint", iterations=8,
                            checkpoint_interval=interval)
            overhead = execution_time(result) / base_time - 1.0
            rows.append([f"interval={interval}", overhead])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("Fig. 2b: CKPT overall overhead, PageRank/LJournal",
                ["config", "overhead"],
                [[label, f"{100 * oh:.1f}%"] for label, oh in rows])
    overheads = [oh for _, oh in rows]
    # Paper: 89% / 51% / 26% — halving the frequency roughly halves the
    # overhead, and interval=1 costs tens of percent at least.
    assert overheads[0] > overheads[1] > overheads[2]
    assert overheads[0] > 0.25
    assert overheads[0] > 2.5 * overheads[2]


def test_fig02c_recovery_breakdown(benchmark):
    out = {}

    def experiment():
        _, base = run("ljournal", ft="none", iterations=4)
        _, result = run("ljournal", ft="checkpoint", iterations=6,
                        checkpoint_interval=4, failures=((5, (5,)),))
        out["iter_s"] = base.avg_iteration_time_s()
        out["stats"] = result.recoveries[0]
        return out

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    stats = out["stats"]
    replay_s = stats.replayed_iterations * out["iter_s"]
    print_table(
        "Fig. 2c: CKPT recovery breakdown, PageRank/LJournal (seconds)",
        ["phase", "seconds"],
        [["one iteration (reference)", out["iter_s"]],
         ["reload", stats.reload_s],
         ["reconstruct", stats.reconstruct_s],
         ["replay (lost iterations)", replay_s],
         ["total", stats.reload_s + stats.reconstruct_s + replay_s]])
    # Paper: reloading from persistent storage dominates recovery, and
    # recovery dwarfs a single iteration.
    assert stats.reload_s > stats.reconstruct_s
    assert stats.reload_s + stats.reconstruct_s + replay_s \
        > 2 * out["iter_s"]
    assert stats.replayed_iterations > 0
