"""Fig. 7 — runtime overhead of REP vs CKPT over BASE (edge-cut).

Paper: Imitator's replication overhead stays below 3.7% on every
workload, while checkpointing costs 65%-449% (and 33%-163% even on an
in-memory HDFS).
"""

from __future__ import annotations

from _harness import overhead_over_base, print_table, run

from repro.datasets import CYCLOPS_WORKLOADS
from repro.metrics.report import execution_time


def test_fig07_runtime_overhead(benchmark):
    rows = []

    def experiment():
        for algorithm, dataset in CYCLOPS_WORKLOADS:
            rep = overhead_over_base(dataset, "replication",
                                     algorithm=algorithm)
            ckpt = overhead_over_base(dataset, "checkpoint",
                                      algorithm=algorithm)
            _, base = run(dataset, algorithm=algorithm, ft="none")
            _, mem = run(dataset, algorithm=algorithm, ft="checkpoint",
                         checkpoint_in_memory=True)
            mem_ckpt = execution_time(mem) / execution_time(base) - 1.0
            rows.append([algorithm, dataset, rep, ckpt, mem_ckpt])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Fig. 7: runtime overhead over BASE (edge-cut / Cyclops)",
        ["algorithm", "dataset", "REP", "CKPT", "CKPT (mem HDFS)"],
        [[a, d, f"{r:.2%}", f"{c:.2%}", f"{m:.2%}"]
         for a, d, r, c, m in rows])

    for _, dataset, rep, ckpt, mem_ckpt in rows:
        # Imitator: small single-digit percent overhead.
        assert rep < 0.08, f"{dataset}: REP overhead {rep:.2%} too high"
        # Checkpointing: large overhead, well above REP.
        assert ckpt > 0.25, f"{dataset}: CKPT overhead {ckpt:.2%} too low"
        assert ckpt > 5 * max(rep, 1e-4)
        # In-memory HDFS helps but stays far costlier than REP.
        assert rep < mem_ckpt < ckpt
    avg_rep = sum(r for _, _, r, _, _ in rows) / len(rows)
    # Paper: 1.37% average for Cyclops; allow a loose band.
    assert avg_rep < 0.05
