"""Ablations for Imitator's two placement heuristics (Section 4).

Not a paper figure — these benches justify design choices DESIGN.md
calls out:

* **FT-replica placement** — the randomized power-of-choices heuristic
  ("select several candidates at random, choose with more detailed
  information") vs naive uniform-random placement: the heuristic should
  balance total copies per node better.
* **Mirror election** — the greedy least-mirrors-per-machine election
  vs always picking the first replica node: the greedy spread lets more
  nodes participate in recovery, shrinking the largest per-node
  recovery burden.
"""

from __future__ import annotations

import numpy as np
from _harness import NUM_NODES, print_table

from repro.config import FaultToleranceConfig, FTMode
from repro.datasets import load
from repro.ft.replication import plan_replication
from repro.partition import hash_edge_cut


def _copies_per_node(graph, plan) -> np.ndarray:
    counts = np.zeros(NUM_NODES, dtype=np.int64)
    for v in range(graph.num_vertices):
        counts[plan.master_of[v]] += 1
        for node in plan.replica_nodes[v]:
            counts[node] += 1
    return counts


def _mirrors_per_node(graph, plan) -> np.ndarray:
    counts = np.zeros(NUM_NODES, dtype=np.int64)
    for v in range(graph.num_vertices):
        for node in plan.mirror_nodes[v]:
            counts[node] += 1
    return counts


def test_ablation_ft_placement(benchmark):
    """Power-of-choices placement vs blind random (candidates=1)."""
    rows = []

    def experiment():
        graph = load("gweb")  # the dataset with the most FT replicas
        part = hash_edge_cut(graph, NUM_NODES)
        for label, candidates in (("random (1 candidate)", 1),
                                  ("power-of-3 (paper)", 3),
                                  ("power-of-8", 8)):
            cfg = FaultToleranceConfig(mode=FTMode.REPLICATION,
                                       ft_level=1,
                                       placement_candidates=candidates)
            plan = plan_replication(graph, part, cfg)
            counts = _copies_per_node(graph, plan)
            rows.append([label, int(counts.max()),
                         float(counts.max() / counts.mean()),
                         float(counts.std())])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("Ablation: FT-replica placement (GWeb, copies per node)",
                ["policy", "max copies", "max/mean", "stddev"], rows)
    blind, power3, power8 = rows
    # More candidates -> tighter balance (never worse).
    assert power3[3] <= blind[3] * 1.02
    assert power8[3] <= power3[3] * 1.05


def test_ablation_mirror_election(benchmark):
    """Greedy least-loaded mirror election vs first-replica election."""
    rows = []

    def experiment():
        graph = load("ljournal")
        part = hash_edge_cut(graph, NUM_NODES)
        cfg = FaultToleranceConfig(mode=FTMode.REPLICATION, ft_level=1)
        plan = plan_replication(graph, part, cfg)
        greedy = _mirrors_per_node(graph, plan)

        # Naive baseline: the first (lowest-id) replica node is always
        # the mirror.
        naive = np.zeros(NUM_NODES, dtype=np.int64)
        for v in range(graph.num_vertices):
            if plan.replica_nodes[v]:
                ft_first = plan.ft_nodes[v][0] if plan.ft_nodes[v] \
                    else plan.replica_nodes[v][0]
                naive[ft_first] += 1
        for label, counts in (("greedy (paper)", greedy),
                              ("first-replica", naive)):
            rows.append([label, int(counts.max()),
                         float(counts.max() / max(1e-9, counts.mean()))])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Ablation: mirror election (LJournal, mirrors per node)",
        ["policy", "max mirrors on one node", "max/mean"], rows)
    greedy_row, naive_row = rows
    # The greedy election spreads mirrors at least as evenly; the max
    # per-node recovery burden bounds Migration's critical path.
    assert greedy_row[1] <= naive_row[1]
    assert greedy_row[2] <= naive_row[2] * 1.02
