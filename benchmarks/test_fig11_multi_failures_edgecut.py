"""Fig. 11 — tolerating multiple machine failures (edge-cut).

(a) runtime overhead when configured for 1/2/3 simultaneous failures —
    paper: below 10% even at FT/3;
(b) recovery time when 1/2/3 nodes actually crash (Wiki) — Rebirth's
    message exchange grows with crashed nodes while rebuild/replay stay
    flat; Migration stays low throughout.
"""

from __future__ import annotations

from _harness import overhead_over_base, print_table, run


def test_fig11a_overhead_vs_ft_level(benchmark):
    rows = []

    def experiment():
        for level in (1, 2, 3):
            oh = overhead_over_base("wiki", "replication", ft_level=level)
            rows.append([f"FT/{level}", oh])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("Fig. 11a: runtime overhead vs FT level (Wiki)",
                ["config", "overhead"],
                [[c, f"{oh:.2%}"] for c, oh in rows])
    overheads = [oh for _, oh in rows]
    assert overheads[0] <= overheads[1] <= overheads[2] * 1.05
    assert overheads[2] < 0.15  # paper: <10% at FT/3


def test_fig11b_recovery_vs_crashed_nodes(benchmark):
    rows = []

    def experiment():
        for crashed in (1, 2, 3):
            nodes = tuple(range(crashed))
            row = [crashed]
            for strategy in ("rebirth", "migration"):
                _, result = run("wiki", iterations=4, ft_level=3,
                                recovery=strategy,
                                failures=((2, nodes),))
                row.append(result.recoveries[0].total_s)
            rows.append(row)
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Fig. 11b: recovery time vs #crashed nodes (Wiki, FT/3, seconds)",
        ["crashed", "REB", "MIG"], rows)
    reb = [row[1] for row in rows]
    mig = [row[2] for row in rows]
    # More crashed nodes never make recovery cheaper.
    assert reb[0] <= reb[2] * 1.10
    assert mig[0] <= mig[2] * 1.10
