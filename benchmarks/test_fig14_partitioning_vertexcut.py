"""Fig. 14 — impact of the vertex-cut partitioning on Imitator.

PageRank on Twitter with Random-, Grid- and Hybrid-cut.

(a) replication factor — paper: 15.96 / 8.34 / 5.56;
(b) Imitator's runtime overhead (higher replication factors leave more
    candidate replicas, so hybrid — the best partitioning — is the
    *worst case* for Imitator: 0.16% / 0.73% / 1.49%) and recovery
    time (higher replication factors slow recovery).
"""

from __future__ import annotations

from _harness import NUM_NODES, overhead_over_base, print_table, run

from repro.datasets import load

CUTS = ("random_vertex_cut", "grid_vertex_cut", "hybrid_cut")
SHORT = {"random_vertex_cut": "random", "grid_vertex_cut": "grid",
         "hybrid_cut": "hybrid"}


def test_fig14a_replication_factor(benchmark):
    rows = []

    def experiment():
        from repro.partition import make_partitioner, replication_factor
        from repro.config import PartitionStrategy
        graph = load("twitter")
        for cut in CUTS:
            part = make_partitioner(PartitionStrategy(cut))(graph,
                                                            NUM_NODES)
            rows.append([SHORT[cut], replication_factor(graph, part)])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("Fig. 14a: replication factor (Twitter, 50 nodes)",
                ["partitioning", "lambda"], rows)
    lam = {name: value for name, value in rows}
    # Paper ordering: hybrid < grid < random.
    assert lam["hybrid"] < lam["grid"] < lam["random"]
    assert lam["random"] > 2 * lam["hybrid"]


def test_fig14b_overhead_and_recovery(benchmark):
    rows = []

    def experiment():
        for cut in CUTS:
            oh = overhead_over_base("twitter", "replication",
                                    partition=cut, iterations=3)
            _, rec = run("twitter", partition=cut, iterations=3,
                         recovery="rebirth", failures=((1, (5,)),))
            _, mig = run("twitter", partition=cut, iterations=3,
                         recovery="migration", failures=((1, (5,)),))
            rows.append([SHORT[cut], oh, rec.recoveries[0].total_s,
                         mig.recoveries[0].total_s])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Fig. 14b: Imitator overhead and recovery by partitioning "
        "(Twitter)",
        ["partitioning", "overhead", "REB recovery (s)",
         "MIG recovery (s)"],
        [[n, f"{o:.2%}", r, m] for n, o, r, m in rows])
    by_name = {row[0]: row for row in rows}
    # Hybrid (fewest candidate replicas) pays the largest REP overhead.
    assert by_name["hybrid"][1] >= by_name["random"][1]
    # All overheads stay small.
    assert all(row[1] < 0.10 for row in rows)
    # Higher replication factors slow recovery down (more copies to
    # restore): random-cut recovery is slowest.
    assert by_name["random"][2] > by_name["hybrid"][2]
