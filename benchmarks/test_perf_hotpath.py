"""Wall-clock and allocation microbenchmark for the compute hot path.

Unlike the figure benchmarks, this file does not reproduce a paper
result — it measures the *implementation* on two axes:

* **Transport batching** (DESIGN.md §10): per-superstep wall-clock,
  physical message-object allocations, and peak traced memory of a
  scalar PageRank run with the batched columnar transport against the
  unbatched compatibility mode (``batch_syncs=False``), on both
  partitioning families (``power_law(800)``).
* **Vectorized kernels** (DESIGN.md §11): the structure-of-arrays fast
  path against the per-vertex scalar loop on a larger graph
  (``power_law(4000)``) where the array kernels amortise their setup —
  with the hard requirement that both paths produce identical logical
  traffic, wire bytes and elision counts.

Wall-clock is measured *without* tracemalloc (tracing every small numpy
allocation inflates the vectorized path several-fold); peak traced
memory comes from a separate instrumented run.  Fixed seeds throughout;
results land in ``BENCH_perf_hotpath.json`` at the repo root.

Three gates:

* ``test_message_object_reduction`` — batching must cut per-superstep
  physical ``Message`` allocations by at least 3x (a hard floor; real
  runs land far above it).
* ``test_vectorized_speedup`` — the vectorized path must be at least
  5x faster per superstep than the scalar batched path on the larger
  workload, with byte-identical traffic accounting.
* ``test_no_wallclock_regression`` — only with ``PERF_BASELINE_CHECK=1``
  (the CI perf-smoke job): per-superstep wall-clock must stay within 2x
  of the committed baseline.  Skipped by default so laptop noise never
  fails a local run.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import pytest

from repro.api import make_engine
from repro.graph import generators

BENCH_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_perf_hotpath.json"

NUM_NODES = 8
PARTITIONS = ("hash_edge_cut", "hybrid_cut")

#: (workload name) -> (graph vertices, iterations, timing repetitions).
WORKLOADS = {
    "batch": (800, 6, 1),
    "vectorized": (4000, 12, 2),
}

#: Baseline as committed, captured before this run overwrites the file.
try:
    _COMMITTED = json.loads(BENCH_PATH.read_text())
except (OSError, ValueError):
    _COMMITTED = None

#: (workload, partition, batch_syncs, vectorized) -> measurement record.
_RESULTS: dict[tuple[str, str, bool, bool], dict] = {}
_GRAPHS: dict[str, object] = {}


def _graph(workload: str):
    if workload not in _GRAPHS:
        n, _, _ = WORKLOADS[workload]
        _GRAPHS[workload] = generators.power_law(
            n, alpha=2.0, seed=7, avg_degree=6.0, name=f"perf{n}")
    return _GRAPHS[workload]


def _measure(workload: str, partition: str, batch_syncs: bool,
             vectorized: bool) -> dict:
    key = (workload, partition, batch_syncs, vectorized)
    if key in _RESULTS:
        return _RESULTS[key]
    n, iterations, reps = WORKLOADS[workload]
    graph = _graph(workload)

    def build():
        return make_engine(graph, "pagerank", num_nodes=NUM_NODES,
                           partition=partition,
                           max_iterations=iterations,
                           batch_syncs=batch_syncs,
                           vectorized=vectorized)

    # Timing pass(es): no instrumentation, best-of-N against scheduler
    # noise.  Counters are identical across repetitions (fixed seeds).
    wall_s = float("inf")
    for _ in range(reps):
        engine = build()
        start = time.perf_counter()
        result = engine.run()
        wall_s = min(wall_s, time.perf_counter() - start)

    # Memory pass: a separate instrumented run so tracemalloc overhead
    # never contaminates the wall-clock numbers.
    tracemalloc.start()
    build().run()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    totals = engine.cluster.network.totals
    steps = max(result.num_iterations, 1)
    _RESULTS[key] = {
        "workload": workload,
        "graph": f"power_law({n}, alpha=2.0, seed=7)",
        "partition": partition,
        "batch_syncs": batch_syncs,
        "vectorized": vectorized,
        "iterations": result.num_iterations,
        "wall_s": wall_s,
        "wall_per_superstep_s": wall_s / steps,
        "logical_records": totals.total_msgs,
        "message_objects": totals.total_batches,
        "message_objects_per_superstep": totals.total_batches / steps,
        "wire_bytes": totals.total_bytes,
        "peak_traced_bytes": peak,
        "syncs_elided": engine.syncs_elided,
    }
    _flush()
    return _RESULTS[key]


def _flush() -> None:
    """Rewrite the JSON with every measurement taken so far."""
    runs = [_RESULTS[k] for k in sorted(_RESULTS, key=str)]
    summary = {}
    for partition in PARTITIONS:
        entry = {}
        before = _RESULTS.get(("batch", partition, False, False))
        after = _RESULTS.get(("batch", partition, True, False))
        if before and after:
            entry["message_object_reduction"] = \
                before["message_objects"] / max(after["message_objects"], 1)
            entry["batch_wall_speedup"] = \
                before["wall_s"] / max(after["wall_s"], 1e-9)
            entry["wire_bytes_saved"] = \
                before["wire_bytes"] - after["wire_bytes"]
        scalar = _RESULTS.get(("vectorized", partition, True, False))
        vec = _RESULTS.get(("vectorized", partition, True, True))
        if scalar and vec:
            entry["vectorized_speedup"] = \
                scalar["wall_per_superstep_s"] / \
                max(vec["wall_per_superstep_s"], 1e-9)
        if entry:
            summary[partition] = entry
    BENCH_PATH.write_text(json.dumps(
        {"figure": "perf_hotpath",
         "workloads": {name: {"graph": f"power_law({n}, alpha=2.0, seed=7)",
                              "algorithm": "pagerank", "nodes": NUM_NODES,
                              "iterations": iters}
                       for name, (n, iters, _) in WORKLOADS.items()},
         "runs": runs, "summary": summary},
        indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("partition", PARTITIONS)
def test_message_object_reduction(partition):
    before = _measure("batch", partition, batch_syncs=False,
                      vectorized=False)
    after = _measure("batch", partition, batch_syncs=True,
                     vectorized=False)
    # Same logical traffic either way: batching only changes packaging.
    assert after["logical_records"] == before["logical_records"]
    assert after["iterations"] == before["iterations"]
    reduction = before["message_objects"] / max(after["message_objects"], 1)
    print(f"\n{partition}: {before['message_objects']} -> "
          f"{after['message_objects']} message objects "
          f"({reduction:.1f}x), wall "
          f"{before['wall_s']:.3f}s -> {after['wall_s']:.3f}s")
    assert reduction >= 3.0
    # Fewer physical messages means fewer 16-byte headers on the wire.
    assert after["wire_bytes"] < before["wire_bytes"]


@pytest.mark.parametrize("partition", PARTITIONS)
def test_batched_is_not_slower(partition):
    """Sanity margin, not a tight gate: the batched path must not be
    dramatically slower than the per-record path it replaces.  (The
    2x regression gate against the committed baseline runs in CI with
    ``PERF_BASELINE_CHECK=1``.)"""
    before = _measure("batch", partition, batch_syncs=False,
                      vectorized=False)
    after = _measure("batch", partition, batch_syncs=True,
                     vectorized=False)
    assert after["wall_s"] < before["wall_s"] * 1.5


@pytest.mark.parametrize("partition", PARTITIONS)
def test_vectorized_speedup(partition):
    """The SoA kernels must beat the scalar loop >=5x per superstep —
    while shipping bit-identical traffic (the differential suite checks
    values; this checks the accounting at benchmark scale)."""
    scalar = _measure("vectorized", partition, batch_syncs=True,
                      vectorized=False)
    vec = _measure("vectorized", partition, batch_syncs=True,
                   vectorized=True)
    assert vec["iterations"] == scalar["iterations"]
    assert vec["logical_records"] == scalar["logical_records"]
    assert vec["wire_bytes"] == scalar["wire_bytes"]
    assert vec["syncs_elided"] == scalar["syncs_elided"]
    speedup = scalar["wall_per_superstep_s"] / \
        max(vec["wall_per_superstep_s"], 1e-9)
    print(f"\n{partition}: per-superstep "
          f"{scalar['wall_per_superstep_s'] * 1e3:.1f}ms -> "
          f"{vec['wall_per_superstep_s'] * 1e3:.1f}ms "
          f"({speedup:.1f}x vectorized speedup)")
    assert speedup >= 5.0


@pytest.mark.skipif(os.environ.get("PERF_BASELINE_CHECK") != "1",
                    reason="set PERF_BASELINE_CHECK=1 to gate against "
                           "the committed baseline")
@pytest.mark.parametrize(
    "workload,partition,vectorized",
    [("batch", p, False) for p in PARTITIONS]
    + [("vectorized", p, True) for p in PARTITIONS])
def test_no_wallclock_regression(workload, partition, vectorized):
    assert _COMMITTED is not None, \
        "no committed BENCH_perf_hotpath.json to gate against"
    baseline = {(r.get("workload", "batch"), r["partition"],
                 r["batch_syncs"], r.get("vectorized", False)): r
                for r in _COMMITTED["runs"]}
    old = baseline.get((workload, partition, True, vectorized))
    assert old is not None, \
        f"baseline missing ({workload}, {partition}, vectorized=" \
        f"{vectorized}) run"
    new = _measure(workload, partition, batch_syncs=True,
                   vectorized=vectorized)
    ratio = new["wall_per_superstep_s"] / \
        max(old["wall_per_superstep_s"], 1e-9)
    print(f"\n{workload}/{partition}: per-superstep wall "
          f"{ratio:.2f}x of baseline")
    assert ratio < 2.0
