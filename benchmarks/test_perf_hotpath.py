"""Wall-clock and allocation microbenchmark for the sync hot path.

Unlike the figure benchmarks, this file does not reproduce a paper
result — it measures the *implementation*: per-superstep wall-clock,
physical message-object allocations, and peak traced memory of a
PageRank run with the batched columnar transport (the default) against
the unbatched compatibility mode (``batch_syncs=False``), on both
partitioning families.  Fixed seeds throughout; results land in
``BENCH_perf_hotpath.json`` at the repo root (DESIGN.md §10).

Two gates:

* ``test_message_object_reduction`` — batching must cut per-superstep
  physical ``Message`` allocations by at least 3x (a hard floor; real
  runs land far above it because supersteps ship thousands of records
  between dozens of node pairs).
* ``test_no_wallclock_regression`` — only with ``PERF_BASELINE_CHECK=1``
  (the CI perf-smoke job): the batched per-superstep wall-clock must
  stay within 2x of the committed baseline.  Skipped by default so
  laptop noise never fails a local run.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import pytest

from repro.api import make_engine
from repro.graph import generators

BENCH_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_perf_hotpath.json"

NUM_NODES = 8
ITERATIONS = 6
PARTITIONS = ("hash_edge_cut", "hybrid_cut")

#: Baseline as committed, captured before this run overwrites the file.
try:
    _COMMITTED = json.loads(BENCH_PATH.read_text())
except (OSError, ValueError):
    _COMMITTED = None

#: (partition, batch_syncs) -> measurement record, filled lazily.
_RESULTS: dict[tuple[str, bool], dict] = {}


def _measure(partition: str, batch_syncs: bool) -> dict:
    key = (partition, batch_syncs)
    if key in _RESULTS:
        return _RESULTS[key]
    graph = generators.power_law(800, alpha=2.0, seed=7,
                                 avg_degree=6.0, name="perf800")
    engine = make_engine(graph, "pagerank", num_nodes=NUM_NODES,
                         partition=partition,
                         max_iterations=ITERATIONS,
                         batch_syncs=batch_syncs)
    tracemalloc.start()
    start = time.perf_counter()
    result = engine.run()
    wall_s = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    totals = engine.cluster.network.totals
    steps = max(result.num_iterations, 1)
    _RESULTS[key] = {
        "partition": partition,
        "batch_syncs": batch_syncs,
        "iterations": result.num_iterations,
        "wall_s": wall_s,
        "wall_per_superstep_s": wall_s / steps,
        "logical_records": totals.total_msgs,
        "message_objects": totals.total_batches,
        "message_objects_per_superstep": totals.total_batches / steps,
        "wire_bytes": totals.total_bytes,
        "peak_traced_bytes": peak,
        "syncs_elided": engine.syncs_elided,
    }
    _flush()
    return _RESULTS[key]


def _flush() -> None:
    """Rewrite the JSON with every measurement taken so far."""
    runs = [_RESULTS[k] for k in sorted(_RESULTS, key=str)]
    summary = {}
    for partition in PARTITIONS:
        before = _RESULTS.get((partition, False))
        after = _RESULTS.get((partition, True))
        if not (before and after):
            continue
        summary[partition] = {
            "message_object_reduction":
                before["message_objects"] / max(after["message_objects"], 1),
            "wall_speedup": before["wall_s"] / max(after["wall_s"], 1e-9),
            "wire_bytes_saved":
                before["wire_bytes"] - after["wire_bytes"],
        }
    BENCH_PATH.write_text(json.dumps(
        {"figure": "perf_hotpath",
         "workload": {"graph": "power_law(800, alpha=2.0, seed=7)",
                      "algorithm": "pagerank", "nodes": NUM_NODES,
                      "iterations": ITERATIONS},
         "runs": runs, "summary": summary},
        indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("partition", PARTITIONS)
def test_message_object_reduction(partition):
    before = _measure(partition, batch_syncs=False)
    after = _measure(partition, batch_syncs=True)
    # Same logical traffic either way: batching only changes packaging.
    assert after["logical_records"] == before["logical_records"]
    assert after["iterations"] == before["iterations"]
    reduction = before["message_objects"] / max(after["message_objects"], 1)
    print(f"\n{partition}: {before['message_objects']} -> "
          f"{after['message_objects']} message objects "
          f"({reduction:.1f}x), wall "
          f"{before['wall_s']:.3f}s -> {after['wall_s']:.3f}s")
    assert reduction >= 3.0
    # Fewer physical messages means fewer 16-byte headers on the wire.
    assert after["wire_bytes"] < before["wire_bytes"]


@pytest.mark.parametrize("partition", PARTITIONS)
def test_batched_is_not_slower(partition):
    """Sanity margin, not a tight gate: the batched path must not be
    dramatically slower than the per-record path it replaces.  (The
    2x regression gate against the committed baseline runs in CI with
    ``PERF_BASELINE_CHECK=1``.)"""
    before = _measure(partition, batch_syncs=False)
    after = _measure(partition, batch_syncs=True)
    assert after["wall_s"] < before["wall_s"] * 1.5


@pytest.mark.skipif(os.environ.get("PERF_BASELINE_CHECK") != "1",
                    reason="set PERF_BASELINE_CHECK=1 to gate against "
                           "the committed baseline")
@pytest.mark.parametrize("partition", PARTITIONS)
def test_no_wallclock_regression(partition):
    assert _COMMITTED is not None, \
        "no committed BENCH_perf_hotpath.json to gate against"
    baseline = {(r["partition"], r["batch_syncs"]):
                r for r in _COMMITTED["runs"]}
    old = baseline.get((partition, True))
    assert old is not None, f"baseline missing batched {partition} run"
    new = _measure(partition, batch_syncs=True)
    ratio = new["wall_per_superstep_s"] / \
        max(old["wall_per_superstep_s"], 1e-9)
    print(f"\n{partition}: per-superstep wall {ratio:.2f}x of baseline")
    assert ratio < 2.0
