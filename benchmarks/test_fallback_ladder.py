"""Fallback-ladder matrix — recovery beyond the configured strategy.

Exercises the four degradation scenarios of DESIGN.md §9 at the
paper's cluster size and records which ladder rung handled each
failure (``fallback_by_rung`` in ``BENCH_fallback_ladder.json``):

1. standby pool exhausted  -> Migration rung;
2. >K simultaneous crashes -> safety-net checkpoint rung;
3. repeated K-failures     -> post-recovery repair keeps the second
                              failure coverable;
4. cluster too small for K -> degraded-mode completion.
"""

from __future__ import annotations

from _harness import print_table, run

DATASET = "dblp"


def test_fallback_ladder_matrix(benchmark):
    rows = []
    results = {}

    def experiment():
        # 1. Two double-failures, two spares: the second failure finds
        #    the pool dry and rides the Migration rung.
        _, exhausted = run(DATASET, ft="replication", recovery="rebirth",
                           ft_level=2, num_standby=2, iterations=6,
                           failures=((2, (0, 1)), (4, (2, 3))))
        results["standby-exhausted"] = exhausted
        # 2. More-than-K simultaneous crashes with the opt-in safety
        #    net: replication is exhausted, the checkpoint rung reloads.
        _, overk = run(DATASET, ft="replication", recovery="rebirth",
                       ft_level=1, num_standby=3, iterations=6,
                       safety_checkpoint_interval=1,
                       failures=((3, (0, 1, 2, 3, 4, 5, 6, 7, 8, 9)),))
        results["over-k"] = overk
        # 3. Migration twice: the repair pass after the first recovery
        #    re-creates the promoted mirrors, so the second K-failure
        #    is still covered.
        _, repaired = run(DATASET, ft="replication", recovery="migration",
                          ft_level=2, num_standby=0, iterations=6,
                          failures=((2, (0, 1)), (4, (2, 3))))
        results["repair-then-crash"] = repaired
        # 4. A 4-node cluster at ft_level=2 loses two nodes: one mirror
        #    per master is all the survivors can hold, and the run
        #    completes degraded instead of failing.
        _, degraded = run(DATASET, ft="replication", recovery="migration",
                          ft_level=2, num_standby=0, nodes=4, iterations=6,
                          failures=((2, (0, 1)),))
        results["degraded"] = degraded
        for name, res in results.items():
            rows.append([name,
                         "+".join(r.strategy for r in res.recoveries),
                         dict(res.fallbacks), res.ft_level_current,
                         res.ft_degraded])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Fallback ladder: rung used per degradation scenario",
        ["scenario", "strategies", "fallbacks", "ft_level", "degraded"],
        rows)

    exhausted = results["standby-exhausted"]
    assert [r.strategy for r in exhausted.recoveries] == \
        ["rebirth", "migration"]
    assert exhausted.fallbacks == {"migration": 1}
    assert not exhausted.ft_degraded

    overk = results["over-k"]
    assert [r.strategy for r in overk.recoveries] == ["safety-checkpoint"]
    assert overk.fallbacks == {"checkpoint": 1}

    repaired = results["repair-then-crash"]
    assert [r.strategy for r in repaired.recoveries] == \
        ["migration", "migration"]
    assert repaired.recoveries[0].repair_replicas_created > 0
    assert not repaired.ft_degraded

    degraded = results["degraded"]
    assert degraded.ft_degraded
    assert degraded.ft_level_current == 1

    # Same converged values as the failure-free baseline, scenario by
    # scenario (transparency survives every rung of the ladder).
    _, base = run(DATASET, ft="none", iterations=6)
    _, base4 = run(DATASET, ft="none", nodes=4, iterations=6)
    for name, res in results.items():
        ref = base4 if name == "degraded" else base
        for gid, value in ref.values.items():
            assert res.values[gid] == value or \
                abs(res.values[gid] - value) <= 1e-9 * abs(value), \
                f"{name}: vertex {gid} diverged"
