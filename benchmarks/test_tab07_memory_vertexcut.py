"""Table 7 — total cluster memory vs partitioning and FT level
(PageRank on Twitter, vertex-cut).

Paper: vertex-cut replicates no edges, so FT memory overhead is tiny
relative to the replication-factor growth — at FT/3 only +0.14%
(random), +0.26% (grid), +1.87% (hybrid).
"""

from __future__ import annotations

from _harness import print_table, run

from repro.metrics import total_cluster_memory

CUTS = ("random_vertex_cut", "grid_vertex_cut", "hybrid_cut")
SHORT = {"random_vertex_cut": "random", "grid_vertex_cut": "grid",
         "hybrid_cut": "hybrid"}


def test_tab07_memory(benchmark):
    rows = []

    def experiment():
        for cut in CUTS:
            engine, _ = run("twitter", ft="none", partition=cut,
                            iterations=3)
            base = total_cluster_memory(engine)
            row = [SHORT[cut], base / 2**20]
            for level in (1, 2, 3):
                engine, _ = run("twitter", ft="replication",
                                partition=cut, ft_level=level,
                                iterations=3)
                mem = total_cluster_memory(engine)
                row.append(100 * (mem / base - 1.0))
            rows.append(row)
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Table 7: cluster memory (Twitter); FT columns are % over BASE",
        ["partitioning", "BASE (MB)", "FT/1 +%", "FT/2 +%", "FT/3 +%"],
        rows)

    by_name = {row[0]: row for row in rows}
    for cut in ("random", "grid", "hybrid"):
        base_mb, ft1, ft2, ft3 = by_name[cut][1:]
        # Monotone, and small even at FT/3 (paper max: 1.87%; the
        # stand-in scale amplifies per-vertex metadata relative to
        # per-edge data, so the band is wider here — see
        # EXPERIMENTS.md).
        assert 0 <= ft1 <= ft2 <= ft3
        assert ft3 < 12.0, f"{cut}: memory overhead {ft3:.2f}% too high"
    # Hybrid pays the largest relative FT memory overhead (fewest
    # pre-existing replicas), random the smallest.
    assert by_name["hybrid"][4] > by_name["random"][4]
