"""Table 6 — execution time and communication cost per iteration for
FT/1..3 across partitioning algorithms (PageRank on Twitter).

Paper: runtime overhead at FT/3 is 1.14% (random), 2.27% (grid) and
4.69% (hybrid); communication overhead reaches 21.49% for hybrid at
FT/3 but the *absolute* communication of hybrid stays far below
random's (0.26 GB vs 1.91 GB per iteration), so fault tolerance never
changes which partitioning wins.
"""

from __future__ import annotations

from _harness import print_table, run

from repro.metrics.report import execution_time

CUTS = ("random_vertex_cut", "grid_vertex_cut", "hybrid_cut")
SHORT = {"random_vertex_cut": "random", "grid_vertex_cut": "grid",
         "hybrid_cut": "hybrid"}
LEVELS = (0, 1, 2, 3)


def comm_gb_per_iter(result) -> float:
    iters = max(1, len(result.iteration_stats))
    scale = 5000  # Twitter stand-in downscale factor
    return result.total_bytes * scale / iters / 2**30


def test_tab06_ft_levels_vs_partitioning(benchmark):
    time_rows = []
    comm_rows = []

    def experiment():
        for cut in CUTS:
            times = []
            comms = []
            for level in LEVELS:
                if level == 0:
                    _, result = run("twitter", ft="none", partition=cut,
                                    iterations=3)
                else:
                    _, result = run("twitter", ft="replication",
                                    partition=cut, ft_level=level,
                                    iterations=3)
                times.append(execution_time(result))
                comms.append(comm_gb_per_iter(result))
            time_rows.append([SHORT[cut]] + times)
            comm_rows.append([SHORT[cut]] + comms)
        return time_rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Table 6 (top): execution time (s) vs FT level (Twitter)",
        ["partitioning", "w/o FT", "FT/1", "FT/2", "FT/3"], time_rows)
    print_table(
        "Table 6 (bottom): communication (GB/iter) vs FT level",
        ["partitioning", "w/o FT", "FT/1", "FT/2", "FT/3"], comm_rows)

    by_name_t = {row[0]: row[1:] for row in time_rows}
    by_name_c = {row[0]: row[1:] for row in comm_rows}
    for cut in ("random", "grid", "hybrid"):
        times = by_name_t[cut]
        comms = by_name_c[cut]
        # Monotone growth with the FT level, but bounded overhead.
        assert times[0] <= times[3] * 1.02
        assert (times[3] - times[0]) / times[0] < 0.15
        assert comms[0] < comms[1] < comms[2] < comms[3]
    # Hybrid's *relative* FT overhead is the largest (fewest existing
    # replicas), random's the smallest.
    rel = {cut: (by_name_c[cut][3] - by_name_c[cut][0])
           / by_name_c[cut][0] for cut in by_name_c}
    assert rel["hybrid"] > rel["grid"] > rel["random"]
    # But absolute communication: hybrid stays the cheapest even at
    # FT/3 — fault tolerance does not change the partitioning choice.
    assert by_name_c["hybrid"][3] < by_name_c["random"][0]
