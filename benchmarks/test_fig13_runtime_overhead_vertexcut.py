"""Fig. 13 — runtime overhead of REP vs CKPT over BASE (vertex-cut).

PageRank on the five real graphs and the five alpha-series synthetic
power-law graphs of Table 4, under PowerLyra's hybrid-cut.  Paper:
Imitator costs 1.5%-3.3%, checkpointing 135%-531%.
"""

from __future__ import annotations

from _harness import overhead_over_base, print_table

from repro.datasets import ALPHA_GRAPHS, POWERLYRA_GRAPHS

GRAPHS = POWERLYRA_GRAPHS + ALPHA_GRAPHS


def test_fig13_runtime_overhead(benchmark):
    rows = []

    def experiment():
        for dataset in GRAPHS:
            rep = overhead_over_base(dataset, "replication",
                                     partition="hybrid_cut", iterations=3)
            ckpt = overhead_over_base(dataset, "checkpoint",
                                      partition="hybrid_cut", iterations=3)
            rows.append([dataset, rep, ckpt])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Fig. 13: runtime overhead over BASE (vertex-cut / PowerLyra)",
        ["graph", "REP", "CKPT"],
        [[d, f"{r:.2%}", f"{c:.2%}"] for d, r, c in rows])

    for dataset, rep, ckpt in rows:
        assert rep < 0.10, f"{dataset}: REP overhead {rep:.2%} too high"
        assert ckpt > 0.25, f"{dataset}: CKPT overhead {ckpt:.2%} too low"
        assert ckpt > 4 * max(rep, 1e-4), dataset
    avg_rep = sum(r for _, r, _ in rows) / len(rows)
    # Paper average: 2.32% for PowerLyra; allow a loose band.
    assert avg_rep < 0.06
