"""Table 3 — memory consumption vs FT level (edge-cut, PageRank/Wiki).

Paper (jstat, one node): max usage grows 2.76 -> 3.70 -> 4.51 -> 4.91 GB
for w/o FT and FT/1..3 — modest, monotone growth.  We account resident
graph-state bytes per node (values, edges, replica metadata, the
mirrors' duplicated edge lists).
"""

from __future__ import annotations

from _harness import print_table, run

from repro.metrics import total_cluster_memory


def test_tab03_memory_vs_ft_level(benchmark):
    rows = []

    def experiment():
        engine, _ = run("wiki", ft="none", iterations=4)
        per_node = max(engine.memory_report().values())
        rows.append(["w/o FT", per_node / 2**20,
                     total_cluster_memory(engine) / 2**20])
        for level in (1, 2, 3):
            engine, _ = run("wiki", ft="replication", ft_level=level,
                            iterations=4)
            per_node = max(engine.memory_report().values())
            rows.append([f"FT/{level}", per_node / 2**20,
                         total_cluster_memory(engine) / 2**20])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Table 3: graph-state memory, PageRank/Wiki (MB, simulated)",
        ["config", "max node MB", "cluster MB"], rows)
    totals = [row[2] for row in rows]
    # Monotone growth with the FT level...
    assert totals[0] < totals[1] < totals[2] < totals[3]
    # ...and the same modest magnitude as the paper's 2.76->4.91 GB
    # (a <2.5x ceiling for FT/3 over BASE under edge-cut, where mirrors
    # duplicate the masters' edge lists).
    assert totals[3] < 2.5 * totals[0]
    assert totals[1] < 1.8 * totals[0]
