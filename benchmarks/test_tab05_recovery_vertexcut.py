"""Table 5 — recovery time CKPT/Rebirth/Migration (vertex-cut).

Paper (seconds): replication-based recovery beats CKPT by 1.70x-7.66x
(Rebirth) and 1.29x-7.18x (Migration); Migration wins on the largest
graph (Twitter: 42.0 vs 33.4) because survivors stream the edge-ckpt
files in parallel, Rebirth wins on small graphs (GWeb: 0.8 vs 1.4).
"""

from __future__ import annotations

from _harness import print_table, run

from repro.datasets import ALPHA_GRAPHS, POWERLYRA_GRAPHS

GRAPHS = POWERLYRA_GRAPHS + ALPHA_GRAPHS


def recovery_seconds(dataset, **overrides):
    _, result = run(dataset, partition="hybrid_cut", iterations=3,
                    failures=((2, (5,)),), **overrides)
    stats = result.recoveries[0]
    replay = stats.replayed_iterations * result.avg_iteration_time_s()
    return stats.total_s + replay


def test_tab05_recovery_time(benchmark):
    rows = []

    def experiment():
        for dataset in GRAPHS:
            ckpt = recovery_seconds(dataset, ft="checkpoint",
                                    checkpoint_interval=2)
            reb = recovery_seconds(dataset, ft="replication",
                                   recovery="rebirth")
            mig = recovery_seconds(dataset, ft="replication",
                                   recovery="migration")
            rows.append([dataset, ckpt, reb, mig])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Table 5: recovery time (seconds), vertex-cut (hybrid), 1 failure",
        ["graph", "CKPT", "REB", "MIG"], rows)

    for dataset, ckpt, reb, mig in rows:
        assert ckpt > reb, f"{dataset}: CKPT {ckpt:.2f} !> REB {reb:.2f}"
        assert ckpt > mig, f"{dataset}: CKPT {ckpt:.2f} !> MIG {mig:.2f}"
    by_name = {row[0]: row for row in rows}
    # Small-graph regime: Rebirth <= Migration (GWeb row of Table 5).
    assert by_name["gweb"][2] < by_name["gweb"][3]
    # Denser alpha graphs take longer to recover than sparser ones
    # (Table 5's alpha column rises from 2.2 to 1.8).
    assert by_name["alpha-1.8"][2] > by_name["alpha-2.2"][2]
    assert by_name["alpha-1.8"][1] > by_name["alpha-2.2"][1]
