"""Shared benchmark harness.

Every benchmark file regenerates one of the paper's tables or figures:
it runs the simulated cluster on the scaled stand-in datasets, prints
the same rows/series the paper reports, and asserts the *shape* of the
result (orderings, rough factors, crossovers) rather than absolute
numbers — the substrate is a simulator, not the authors' testbed.

Runs are cached per pytest session: several figures share the same
underlying executions (e.g. Fig. 7's REP runs also feed Fig. 8 and
Table 2's baselines), so each configuration executes once.

All experiments run at the paper's cluster size (50 worker nodes) and
with ``data_scale`` set to each stand-in's downscale factor, so the
simulated seconds land in the paper's range.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

from repro.api import make_engine
from repro.datasets import CATALOG
from repro.datasets import load as load_dataset
from repro.engine.engine import Engine, RunResult
from repro.metrics.report import execution_time

#: The paper's cluster size (Section 6.1).
NUM_NODES = 50

_CACHE: dict[tuple, tuple[Engine, RunResult]] = {}
#: Wall-clock of the original execution, reported again on cache hits.
_WALL: dict[tuple, float] = {}

# ---------------------------------------------------------------------------
# machine-readable results (BENCH_<figure>.json)
# ---------------------------------------------------------------------------

#: Repo root — BENCH files land next to pyproject.toml.
_BENCH_DIR = Path(__file__).resolve().parent.parent

#: figure -> {spec key -> result record}; flushed on every new record.
_BENCH: dict[str, dict[tuple, dict[str, Any]]] = {}


def _current_figure() -> str:
    """Figure name from the running test module (``fig07``, ``tab02``...).

    Falls back to ``adhoc`` outside pytest, so direct harness use still
    records results.
    """
    test = os.environ.get("PYTEST_CURRENT_TEST", "")
    if test:
        module = Path(test.split("::", 1)[0]).stem
        return module[len("test_"):] if module.startswith("test_") else module
    return "adhoc"


def _bench_record(spec: RunSpec, engine: Engine, result: RunResult,
                  wall_s: float) -> None:
    """Attribute one (possibly cached) execution to the current figure."""
    figure = _current_figure()
    per_figure = _BENCH.setdefault(figure, {})
    if spec.key() in per_figure:
        return
    totals = engine.cluster.network.totals
    per_figure[spec.key()] = {
        "spec": asdict(spec),
        "sim_time_s": result.total_sim_time_s,
        "wall_time_s": wall_s,
        "iterations": result.num_iterations,
        "messages": result.total_messages,
        "bytes": result.total_bytes,
        "traffic_by_kind": {
            kind.value: {"msgs": totals.msgs_by_kind[kind],
                         "bytes": totals.bytes_by_kind[kind]}
            for kind in sorted(totals.msgs_by_kind, key=lambda k: k.value)},
        "recoveries": [
            {"strategy": r.strategy, "at_iteration": r.at_iteration,
             "failed_nodes": list(r.failed_nodes),
             "reload_s": r.reload_s, "reconstruct_s": r.reconstruct_s,
             "replay_s": r.replay_s, "detection_s": r.detection_s,
             "recovery_bytes": r.recovery_bytes,
             "repair_s": r.repair_s,
             "repair_replicas_created": r.repair_replicas_created}
            for r in result.recoveries],
        "fallback_by_rung": {
            key[len("recovery.fallback.by_rung."):]: int(value)
            for key, value in engine.metrics.counters(
                "recovery.fallback.by_rung.").items()},
        "ft_level_current": result.ft_level_current,
        "ft_degraded": result.ft_degraded,
    }
    path = _BENCH_DIR / f"BENCH_{figure}.json"
    payload = {"figure": figure, "runs": list(per_figure.values())}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@dataclass(frozen=True)
class RunSpec:
    """One cached engine execution."""

    dataset: str
    algorithm: str = "pagerank"
    ft: str = "replication"            # none | replication | checkpoint
    partition: str = "hash_edge_cut"
    nodes: int = NUM_NODES
    iterations: int = 4
    ft_level: int = 1
    recovery: str = "rebirth"
    failures: tuple = ()
    selfish_optimization: bool = True
    checkpoint_interval: int = 1
    checkpoint_in_memory: bool = False
    safety_checkpoint_interval: int = 0
    num_standby: int = 3
    algo_kwargs: tuple = ()

    def key(self) -> tuple:
        """Cache key with configuration-irrelevant fields normalised.

        A BASE run is the same run whatever ft_level/recovery it was
        requested with; a replication run ignores checkpoint knobs and
        vice versa; the recovery strategy only matters when failures
        are injected.
        """
        ft_level = self.ft_level if self.ft == "replication" else 0
        recovery = (self.recovery
                    if self.ft == "replication" and self.failures
                    else "-")
        selfish = (self.selfish_optimization
                   if self.ft == "replication" else True)
        ckpt_interval = (self.checkpoint_interval
                         if self.ft == "checkpoint" else 1)
        ckpt_mem = (self.checkpoint_in_memory
                    if self.ft == "checkpoint" else False)
        safety = (self.safety_checkpoint_interval
                  if self.ft == "replication" else 0)
        return (self.dataset, self.algorithm, self.ft, self.partition,
                self.nodes, self.iterations, ft_level, recovery,
                self.failures, selfish, ckpt_interval, ckpt_mem,
                safety, self.num_standby, self.algo_kwargs)


def algorithm_kwargs(dataset: str, algorithm: str) -> dict[str, Any]:
    """Per-workload program options (Table 1 conventions)."""
    if algorithm == "als":
        graph = load_dataset(dataset)
        # The SYN-GL stand-in is built with an 80/20 user/item split.
        return {"num_users": graph.num_vertices * 4 // 5, "rank": 3}
    if algorithm == "sssp":
        return {"source": 0}
    return {}


def execute(spec: RunSpec) -> tuple[Engine, RunResult]:
    """Run (or fetch) one configuration.

    Every call — cache hit or not — is recorded in the current
    figure's ``BENCH_<figure>.json``, so each figure's file lists all
    the runs it depends on even when another figure executed them.
    """
    key = spec.key()
    if key in _CACHE:
        engine, result = _CACHE[key]
        _bench_record(spec, engine, result, _WALL.get(key, 0.0))
        return engine, result
    graph = load_dataset(spec.dataset)
    kwargs = dict(spec.algo_kwargs) or algorithm_kwargs(spec.dataset,
                                                        spec.algorithm)
    engine = make_engine(
        graph, spec.algorithm,
        num_nodes=spec.nodes,
        ft_mode=spec.ft if spec.ft != "rep" else "replication",
        ft_level=spec.ft_level,
        recovery=spec.recovery,
        partition=spec.partition,
        max_iterations=spec.iterations,
        checkpoint_interval=spec.checkpoint_interval,
        checkpoint_in_memory=spec.checkpoint_in_memory,
        safety_checkpoint_interval=spec.safety_checkpoint_interval,
        selfish_optimization=spec.selfish_optimization,
        num_standby=spec.num_standby,
        data_scale=float(CATALOG[spec.dataset].scale),
        algorithm_kwargs=kwargs,
    )
    for failure in spec.failures:
        engine.schedule_failure(*failure)
    start = time.perf_counter()
    result = engine.run()
    wall_s = time.perf_counter() - start
    _CACHE[key] = (engine, result)
    _WALL[key] = wall_s
    _bench_record(spec, engine, result, wall_s)
    return engine, result


def run(dataset: str, **overrides: Any) -> tuple[Engine, RunResult]:
    return execute(RunSpec(dataset=dataset, **overrides))


def overhead_over_base(dataset: str, ft: str, **overrides: Any) -> float:
    """Relative slowdown of an FT config against BASE (Figs. 7/13...)."""
    _, base = run(dataset, ft="none", **overrides)
    _, with_ft = run(dataset, ft=ft, **overrides)
    return execution_time(with_ft) / execution_time(base) - 1.0


def recovery_stats(dataset: str, *, at_iteration: int = 2,
                   crash_nodes: tuple[int, ...] = (5,),
                   **overrides: Any):
    """Run with an injected crash and return the RecoveryStats."""
    failures = ((at_iteration, tuple(crash_nodes)),)
    _, result = run(dataset, failures=failures, **overrides)
    assert result.recoveries, "no recovery happened"
    return result.recoveries[0]


# ---------------------------------------------------------------------------
# printing helpers
# ---------------------------------------------------------------------------

def print_table(title: str, headers: list[str],
                rows: list[list[Any]]) -> None:
    """Print one paper-style table."""
    widths = [max(len(str(h)), *(len(_fmt(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(_fmt(c).ljust(w) for c, w in zip(row, widths)))


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}" if abs(cell) >= 0.1 else f"{cell:.4f}"
    return str(cell)


def pct(x: float) -> str:
    return f"{100 * x:.2f}%"
