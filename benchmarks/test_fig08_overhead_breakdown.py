"""Fig. 8 — where Imitator's (tiny) overhead comes from.

(a) extra FT replicas as a share of all replicas — paper: at most
    0.12% once selfish vertices are optimised;
(b) extra messages relative to BASE, with and without the
    selfish-vertex optimisation — paper: <=2.92% without, <0.1% with.
"""

from __future__ import annotations

from _harness import print_table, run

from repro.config import FaultToleranceConfig, FTMode
from repro.datasets import CYCLOPS_WORKLOADS, load
from repro.ft.replication import plan_replication
from repro.metrics.report import message_overhead
from repro.partition import hash_edge_cut

PAGERANK_SETS = [(a, d) for a, d in CYCLOPS_WORKLOADS if a == "pagerank"]


def test_fig08a_extra_replicas(benchmark):
    rows = []

    def experiment():
        for _, dataset in CYCLOPS_WORKLOADS:
            graph = load(dataset)
            part = hash_edge_cut(graph, 50)
            cfg = FaultToleranceConfig(mode=FTMode.REPLICATION, ft_level=1)
            plan = plan_replication(graph, part, cfg)
            total = sum(len(r) for r in plan.replica_nodes)
            with_selfish = plan.total_ft_replicas() / max(1, total)
            sans_selfish = sum(
                len(plan.ft_nodes[v]) for v in range(graph.num_vertices)
                if not plan.selfish[v]) / max(1, total)
            rows.append([dataset, with_selfish, sans_selfish])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Fig. 8a: extra FT replicas / all replicas",
        ["dataset", "w/o selfish opt", "w/ selfish opt"],
        [[d, f"{a:.3%}", f"{b:.3%}"] for d, a, b in rows])
    for _, with_selfish, sans_selfish in rows:
        assert sans_selfish <= with_selfish
        assert sans_selfish < 0.02  # paper: max 0.12%


def test_fig08b_extra_messages(benchmark):
    rows = []

    def experiment():
        for algorithm, dataset in PAGERANK_SETS:
            _, base = run(dataset, algorithm=algorithm, ft="none")
            _, opt_on = run(dataset, algorithm=algorithm,
                            ft="replication", selfish_optimization=True)
            _, opt_off = run(dataset, algorithm=algorithm,
                             ft="replication", selfish_optimization=False)
            rows.append([dataset,
                         message_overhead(base, opt_off),
                         message_overhead(base, opt_on)])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Fig. 8b: extra messages over BASE (PageRank)",
        ["dataset", "w/o selfish opt", "w/ selfish opt"],
        [[d, f"{a:.3%}", f"{b:.3%}"] for d, a, b in rows])
    for dataset, without, with_opt in rows:
        assert with_opt <= without
        assert with_opt < 0.01, f"{dataset}: optimised overhead too high"
        assert without < 0.25
