"""Section 2.3 — Imitator-CKPT vs Hama's stock checkpoint.

The paper's footnote-level but load-bearing claim: Imitator-CKPT (the
near-optimal baseline used throughout the evaluation) is *several times
faster than Hama's default checkpoint mechanism — up to 6.5x for the
Wiki dataset* — because vertex replication lets it skip the in-flight
messages that a pure message-passing snapshot must persist.

This bench runs the same PageRank workload on the Pregel/Hama
message-passing engine (message-inclusive snapshots) and on the
replication engine with Imitator-CKPT (vertex-state-only snapshots) and
compares per-checkpoint cost and bytes.
"""

from __future__ import annotations

from _harness import NUM_NODES, print_table, run

from repro.datasets import CATALOG, load
from repro.engine.pregel import MessagePassingPageRank, PregelEngine

DATASETS = ("gweb", "ljournal", "wiki")


def test_sec23_hama_vs_imitator_ckpt(benchmark):
    rows = []

    def experiment():
        for dataset in DATASETS:
            graph = load(dataset)
            scale = float(CATALOG[dataset].scale)
            hama = PregelEngine(graph, MessagePassingPageRank(),
                                num_nodes=NUM_NODES,
                                checkpoint_interval=1, data_scale=scale)
            hama_result = hama.run(4)
            hama_ckpt_s = (sum(s.checkpoint_s for s in
                               hama_result.iteration_stats)
                           / len(hama_result.iteration_stats))
            _, imitator = run(dataset, ft="checkpoint", iterations=4)
            imitator_ckpt_s = (sum(s.checkpoint_s for s in
                                   imitator.iteration_stats)
                               / len(imitator.iteration_stats))
            rows.append([dataset, hama_ckpt_s, imitator_ckpt_s,
                         hama_ckpt_s / imitator_ckpt_s])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Section 2.3: per-checkpoint cost, Hama vs Imitator-CKPT "
        "(seconds)",
        ["dataset", "Hama (msgs+values)", "Imitator-CKPT (values)",
         "speedup"],
        rows)
    by_name = {row[0]: row for row in rows}
    # Imitator-CKPT is always faster...
    for dataset, hama_s, imit_s, speedup in rows:
        assert speedup > 1.2, f"{dataset}: speedup {speedup:.2f}"
    # ...and the advantage peaks on the densest dataset (Wiki, where
    # messages outnumber vertices ~18:1; paper: up to 6.5x there).
    assert by_name["wiki"][3] >= by_name["gweb"][3]
    assert by_name["wiki"][3] > 2.0
