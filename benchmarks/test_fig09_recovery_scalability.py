"""Fig. 9 — recovery scalability with the number of nodes.

PageRank on Wiki; the cluster grows from 10 to 50 nodes and one node
crashes.  Both strategies speed up with more nodes because every
survivor helps reload in parallel; Rebirth keeps a fixed replay cost on
the single new node, while Migration distributes it.
"""

from __future__ import annotations

from _harness import print_table, run

NODE_COUNTS = (10, 20, 30, 40, 50)


def test_fig09_recovery_scalability(benchmark):
    rows = []

    def experiment():
        for nodes in NODE_COUNTS:
            row = [nodes]
            for strategy in ("rebirth", "migration"):
                _, result = run("wiki", iterations=4, nodes=nodes,
                                recovery=strategy,
                                failures=((2, (min(5, nodes - 1),)),))
                stats = result.recoveries[0]
                row.extend([stats.total_s, stats.reload_s,
                            stats.replay_s])
            rows.append(row)
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Fig. 9: recovery time vs cluster size (PageRank / Wiki, seconds)",
        ["nodes", "REB total", "REB reload", "REB replay",
         "MIG total", "MIG reload", "MIG replay"],
        rows)

    reb = [row[1] for row in rows]
    mig = [row[4] for row in rows]
    # Both strategies get faster (or no worse) as the cluster grows.
    assert reb[-1] <= reb[0]
    assert mig[-1] <= mig[0]
    # And the 10-node recovery is measurably slower than the 50-node
    # one for at least one strategy (parallel reload helps).
    assert reb[0] > reb[-1] * 1.05 or mig[0] > mig[-1] * 1.05
