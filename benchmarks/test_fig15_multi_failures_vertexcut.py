"""Fig. 15 — multiple machine failures under vertex-cut (Twitter).

(a) runtime overhead for FT/1..3 — paper: only 4.69% at FT/3;
(b) recovery time when 1..3 nodes crash — Rebirth stays nearly flat
    (newbies read edge-ckpt files in parallel) while Migration grows
    (survivors absorb more reloaded edges).
"""

from __future__ import annotations

from _harness import overhead_over_base, print_table, run


def test_fig15a_overhead(benchmark):
    rows = []

    def experiment():
        for level in (1, 2, 3):
            oh = overhead_over_base("twitter", "replication",
                                    partition="hybrid_cut",
                                    ft_level=level, iterations=3)
            rows.append([f"FT/{level}", oh])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("Fig. 15a: runtime overhead vs FT level "
                "(Twitter, hybrid-cut)",
                ["config", "overhead"],
                [[c, f"{o:.2%}"] for c, o in rows])
    overheads = [o for _, o in rows]
    assert overheads[0] <= overheads[1] <= overheads[2] * 1.05
    assert overheads[2] < 0.15


def test_fig15b_recovery(benchmark):
    rows = []

    def experiment():
        for crashed in (1, 2, 3):
            nodes = tuple(range(crashed))
            row = [crashed]
            for strategy in ("rebirth", "migration"):
                _, result = run("twitter", partition="hybrid_cut",
                                iterations=3, ft_level=3,
                                recovery=strategy,
                                failures=((1, nodes),))
                row.append(result.recoveries[0].total_s)
            rows.append(row)
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("Fig. 15b: recovery time vs #crashed nodes "
                "(Twitter, FT/3, seconds)",
                ["crashed", "REB", "MIG"], rows)
    reb = [row[1] for row in rows]
    mig = [row[2] for row in rows]
    # Paper: Migration's time grows faster with crashed nodes than
    # Rebirth's (survivors absorb ever more reloaded edges while the
    # newbies read in parallel).
    assert (mig[2] - mig[0]) >= (reb[2] - reb[0]) - 0.05
    assert mig[2] >= mig[0]
