"""Fig. 3 — why replication-based FT is cheap.

(a) the fraction of vertices without computation replicas on 50 nodes
    (hash partitioning), split into selfish and normal vertices —
    paper: >10% only for GWeb and LJournal, driven by selfish vertices;
(b) the fraction of extra (FT) replicas needed once selfish vertices
    are excluded — paper: below 0.15% for every dataset.
"""

from __future__ import annotations

from _harness import NUM_NODES, print_table

from repro.config import FaultToleranceConfig, FTMode
from repro.datasets import CYCLOPS_WORKLOADS, load
from repro.ft.replication import plan_replication
from repro.graph.analysis import vertices_without_replicas
from repro.partition import hash_edge_cut

DATASETS = [dataset for _, dataset in CYCLOPS_WORKLOADS]


def test_fig03_replica_census(benchmark):
    rows = []

    def experiment():
        for dataset in DATASETS:
            graph = load(dataset)
            part = hash_edge_cut(graph, NUM_NODES)
            selfish, normal = vertices_without_replicas(graph,
                                                        part.master_of)
            n = graph.num_vertices
            # Fig. 3b: extra replicas with the selfish optimisation on
            # (selfish vertices need only an unsynchronised FT replica).
            cfg = FaultToleranceConfig(mode=FTMode.REPLICATION, ft_level=1)
            plan = plan_replication(graph, part, cfg)
            non_selfish_ft = sum(
                len(plan.ft_nodes[v]) for v in range(n)
                if not plan.selfish[v])
            total_replicas = sum(len(r) for r in plan.replica_nodes)
            rows.append([dataset,
                         len(selfish) / n,
                         len(normal) / n,
                         (len(selfish) + len(normal)) / n,
                         non_selfish_ft / max(1, total_replicas)])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Fig. 3: vertices w/o replicas and extra FT replicas (50 nodes)",
        ["dataset", "selfish", "normal", "no-replica total",
         "extra FT (sans selfish)"],
        [[d, f"{s:.2%}", f"{n:.2%}", f"{t:.2%}", f"{e:.3%}"]
         for d, s, n, t, e in rows])

    by_name = {row[0]: row for row in rows}
    # Paper: GWeb and LJournal exceed 10% replica-less vertices...
    assert by_name["gweb"][3] > 0.10
    assert by_name["ljournal"][3] > 0.10
    # ...driven by selfish vertices...
    assert by_name["gweb"][1] > by_name["gweb"][2]
    # ...while the other datasets stay around or below 1%.
    for name in ("wiki", "syn-gl", "dblp", "roadca"):
        assert by_name[name][3] < 0.03
    # Fig. 3b: extra replicas (ignoring selfish) are a tiny fraction.
    assert all(row[4] < 0.02 for row in rows)
