"""Scaling benchmark for the multiprocessing execution backend.

Measures real-parallelism wall-clock on the perf-hotpath PageRank
workload (``power_law(4000)``, 12 iterations): the deterministic
simulator's scalar path against the multiprocessing backend at 1, 2
and 4 worker processes.  Every run's committed values are bit-checked
against the simulator so a fast-but-wrong backend can never pass.

Results land in ``BENCH_mp_backend.json`` at the repo root, with the
host's ``cpu_count`` recorded alongside — the speedup gate
(``>=1.5x`` at 4 workers vs the scalar simulator) only arms on hosts
with at least 4 CPUs, because forked workers cannot beat a single
in-process loop when they time-share one core; single-core hosts still
record honest numbers and run the parity checks.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.exec.base import BackendSpec
from repro.exec.mp import MultiprocessingBackend
from repro.exec.simulator import SimulatorBackend
from repro.graph import generators

BENCH_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_mp_backend.json"

GRAPH_N = 4000
ITERATIONS = 12
WORKER_COUNTS = (1, 2, 4)
SPEEDUP_FLOOR = 1.5

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="multiprocessing backend requires the fork start method")

_RESULTS: dict[str, dict] = {}
_GRAPH = None


def _graph():
    global _GRAPH
    if _GRAPH is None:
        _GRAPH = generators.power_law(GRAPH_N, alpha=2.0, seed=7,
                                      avg_degree=6.0, name="mp-bench")
    return _GRAPH


def _spec(num_nodes: int) -> BackendSpec:
    # ft_mode none so the one-worker configuration is legal and every
    # point of the scaling series runs the identical protocol.
    return BackendSpec(algorithm="pagerank", num_nodes=num_nodes,
                       ft_mode="none", ft_level=0,
                       max_iterations=ITERATIONS, vectorized=False)


def _run(key: str) -> dict:
    if key in _RESULTS:
        return _RESULTS[key]
    graph = _graph()
    if key == "simulator":
        start = time.perf_counter()
        result = SimulatorBackend().run(graph, _spec(4))
        wall_s = time.perf_counter() - start
        backend = "simulator"
        workers = 4
    else:
        workers = int(key.split("-")[1])
        with MultiprocessingBackend() as be:
            result = be.run(graph, _spec(workers))
        wall_s = result.wall_s
        backend = "multiprocessing"
    _RESULTS[key] = {
        "backend": backend,
        "workers": workers,
        "graph": f"power_law({GRAPH_N}, alpha=2.0, seed=7)",
        "algorithm": "pagerank",
        "iterations": result.iterations,
        "wall_s": wall_s,
        "wall_per_superstep_s": wall_s / max(result.iterations, 1),
        "logical_records": result.total_msgs,
        "wire_bytes": result.total_bytes,
        "values_checksum": sum(result.values.values()),
    }
    _RESULTS[key]["_values"] = result.values
    _flush()
    return _RESULTS[key]


def _flush() -> None:
    runs = [{k: v for k, v in _RESULTS[key].items() if k != "_values"}
            for key in sorted(_RESULTS)]
    summary: dict = {"cpu_count": os.cpu_count()}
    sim = _RESULTS.get("simulator")
    for workers in WORKER_COUNTS:
        run = _RESULTS.get(f"mp-{workers}")
        if sim and run:
            summary[f"speedup_{workers}w_vs_simulator"] = \
                sim["wall_s"] / max(run["wall_s"], 1e-9)
    BENCH_PATH.write_text(json.dumps(
        {"figure": "mp_backend_scaling",
         "workload": {"graph": f"power_law({GRAPH_N}, alpha=2.0, seed=7)",
                      "algorithm": "pagerank", "iterations": ITERATIONS,
                      "ft_mode": "none"},
         "runs": runs, "summary": summary},
        indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_scaling_point_matches_simulator_traffic(workers):
    """Each scaling point must do the real protocol work: identical
    logical traffic and bit-identical values to a simulator run of the
    same spec."""
    run = _run(f"mp-{workers}")
    reference = SimulatorBackend().run(_graph(), _spec(workers))
    assert run["iterations"] == reference.iterations
    assert run["logical_records"] == reference.total_msgs
    assert run["wire_bytes"] == reference.total_bytes
    assert _RESULTS[f"mp-{workers}"]["_values"] == reference.values


def test_speedup_vs_simulator():
    sim = _run("simulator")
    mp4 = _run("mp-4")
    speedup = sim["wall_s"] / max(mp4["wall_s"], 1e-9)
    print(f"\nscalar simulator {sim['wall_s']:.2f}s vs 4-worker mp "
          f"{mp4['wall_s']:.2f}s ({speedup:.2f}x, "
          f"{os.cpu_count()} cpus)")
    cpus = os.cpu_count() or 1
    if cpus < 4:
        pytest.skip(f"speedup gate needs >=4 CPUs (host has {cpus}); "
                    f"honest numbers recorded in BENCH_mp_backend.json")
    assert speedup >= SPEEDUP_FLOOR
