"""Fig. 10 — impact of a better edge-cut (Fennel) on Imitator.

(a) Fennel's replication factor vs hash partitioning — paper: 1.61 /
    3.84 / 5.09 for GWeb / LJournal / Wiki vs much higher hash values;
(b) Imitator's runtime overhead under Fennel — fewer existing replicas
    mean more FT replicas, but the overhead stays small (paper:
    1.8%-4.7%).
"""

from __future__ import annotations

from _harness import NUM_NODES, overhead_over_base, print_table

from repro.datasets import load
from repro.partition import fennel_edge_cut, hash_edge_cut, \
    replication_factor

DATASETS = ("gweb", "ljournal", "wiki")


def test_fig10a_replication_factor(benchmark):
    rows = []

    def experiment():
        for dataset in DATASETS:
            graph = load(dataset)
            lam_hash = replication_factor(graph,
                                          hash_edge_cut(graph, NUM_NODES))
            lam_fennel = replication_factor(
                graph, fennel_edge_cut(graph, NUM_NODES))
            rows.append([dataset, lam_hash, lam_fennel])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("Fig. 10a: replication factor, hash vs Fennel (50 nodes)",
                ["dataset", "hash", "fennel"], rows)
    for dataset, lam_hash, lam_fennel in rows:
        assert lam_fennel < lam_hash, \
            f"{dataset}: Fennel should cut the replication factor"
    # Ordering across datasets follows density (GWeb < LJournal ~ Wiki).
    assert rows[0][2] < rows[1][2]


def test_fig10b_overhead_under_fennel(benchmark):
    rows = []

    def experiment():
        for dataset in DATASETS:
            oh = overhead_over_base(dataset, "replication",
                                    partition="fennel_edge_cut")
            rows.append([dataset, oh])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("Fig. 10b: Imitator overhead under Fennel",
                ["dataset", "overhead"],
                [[d, f"{oh:.2%}"] for d, oh in rows])
    # Paper: 1.8%-4.7% — small, though above the hash-partitioning case.
    for dataset, oh in rows:
        assert oh < 0.12, f"{dataset}: overhead {oh:.2%} too high"
