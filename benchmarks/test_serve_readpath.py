"""Read-path benchmark: 100k-query serving under chaos, both backends.

The acceptance scenario for the online read-serving layer (DESIGN.md
§13): a seeded open-loop workload of 100 000 queries (Zipf keys, Poisson
arrivals, 5% neighborhood / 2% top-K) is served *concurrently* with a
PageRank run that loses three nodes to chaos kills — a double kill mid
compute and a single kill right after a commit.  Every response must be
bit-equal to the value committed at the superstep it is tagged with
(differential replay of the identical job without serving), uncommitted
reads must be zero, and reads degraded by recovery must say so.

Results — p50/p99 service latency, per-replica load, degraded/miss
counts — land in ``BENCH_serve_readpath.json`` for both the simulator
and the multiprocessing backend.

Gates:

* ``test_simulator_serves_bit_equal`` / ``test_multiprocessing_serves_
  bit_equal`` — zero mismatches against the committed-history replay,
  zero uncommitted reads, degraded reads present and flagged.
* ``test_no_p99_regression`` — only with ``PERF_BASELINE_CHECK=1`` (the
  CI serve-smoke job): simulator p99 must stay within 3x of the
  committed baseline.  Skipped by default so laptop noise never fails a
  local run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.exec.base import BackendSpec
from repro.exec.simulator import SimulatorBackend
from repro.graph import generators
from repro.serve import check_responses, replay_committed_history

BENCH_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_serve_readpath.json"

NUM_VERTICES = 1000
NUM_QUERIES = 100_000

#: A double kill mid-compute, then a single kill after a commit —
#: exercises both detection paths on both backends (the multiprocessing
#: backend only supports these two phases).
FAILURES = ((2, (0, 1), "compute"), (5, (2,), "after_commit"))

SPEC = BackendSpec(
    algorithm="pagerank", num_nodes=5, ft_level=2, max_iterations=10,
    num_standby=3, failures=FAILURES,
    serve=(("num_queries", NUM_QUERIES), ("qps", float(NUM_QUERIES)),
           ("seed", 11), ("zipf_s", 1.1),
           ("neighborhood_frac", 0.05), ("topk_frac", 0.02)))

#: Baseline as committed, captured before this run overwrites the file.
try:
    _COMMITTED = json.loads(BENCH_PATH.read_text())
except (OSError, ValueError):
    _COMMITTED = None

_STATE: dict[str, object] = {}


def _graph():
    if "graph" not in _STATE:
        _STATE["graph"] = generators.power_law(
            NUM_VERTICES, alpha=2.0, seed=7, avg_degree=5.0,
            name="serve-bench")
    return _STATE["graph"]


def _history():
    if "history" not in _STATE:
        _STATE["history"] = replay_committed_history(_graph(), SPEC)
    return _STATE["history"]


def _measure(backend_name: str) -> dict:
    key = f"run:{backend_name}"
    if key in _STATE:
        return _STATE[key]
    if backend_name == "simulator":
        result = SimulatorBackend().run(_graph(), SPEC)
    else:
        from repro.exec.mp import MultiprocessingBackend
        with MultiprocessingBackend() as backend:
            result = backend.run(_graph(), SPEC)
    mismatches = check_responses(result.extra["serve_responses"],
                                 _history())
    responses = result.extra["serve_responses"]
    record = dict(result.extra["serve"])
    record.update({
        "backend": backend_name,
        "mismatches": len(mismatches),
        "uncommitted_reads": len(mismatches),
        "failures_recovered": result.failures_recovered,
        "run_wall_s": result.wall_s,
        "responses_kept": len(responses),
    })
    _STATE[key] = record
    _STATE.setdefault("mismatches:" + backend_name, mismatches)
    _flush()
    return record


def _flush() -> None:
    runs = [_STATE[k] for k in sorted(_STATE) if k.startswith("run:")]
    BENCH_PATH.write_text(json.dumps(
        {"figure": "serve_readpath",
         "scenario": {
             "graph": f"power_law({NUM_VERTICES}, alpha=2.0, seed=7)",
             "algorithm": "pagerank", "nodes": 5, "ft_level": 2,
             "iterations": 10, "failures": [list(f) for f in FAILURES],
             "workload": dict(SPEC.serve)},
         "runs": runs},
        indent=2, sort_keys=True) + "\n")


def _assert_served_committed(record: dict) -> None:
    assert record["queries"] == NUM_QUERIES
    assert record["mismatches"] == 0, \
        _STATE["mismatches:" + record["backend"]][:3]
    assert record["uncommitted_reads"] == 0
    # Three nodes died: recovery windows must have degraded some reads.
    assert record["degraded_reads"] > 0
    # Reads spread across every worker (replicas are read capacity).
    assert sorted(record["per_replica_load"]) == list(range(5))
    assert record["p99_us"] > 0.0


def test_simulator_serves_bit_equal():
    record = _measure("simulator")
    _assert_served_committed(record)
    print(f"\nsimulator: {record['queries']} queries, "
          f"{record['degraded_reads']} degraded, "
          f"{record['misses']} misses, p50 {record['p50_us']:.1f}us, "
          f"p99 {record['p99_us']:.1f}us")


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="multiprocessing backend requires the fork start method")
def test_multiprocessing_serves_bit_equal():
    record = _measure("multiprocessing")
    _assert_served_committed(record)
    print(f"\nmultiprocessing: {record['queries']} queries, "
          f"{record['degraded_reads']} degraded, "
          f"{record['misses']} misses, p50 {record['p50_us']:.1f}us, "
          f"p99 {record['p99_us']:.1f}us")


def test_load_is_spread_across_replicas():
    """Round-robin routing keeps any single node from absorbing the
    read traffic: the hottest node carries less than half of what a
    single-copy (master-only) design would put on the hottest master."""
    record = _measure("simulator")
    load = record["per_replica_load"]
    total = sum(load.values())
    assert max(load.values()) < 0.5 * total


@pytest.mark.skipif(os.environ.get("PERF_BASELINE_CHECK") != "1",
                    reason="set PERF_BASELINE_CHECK=1 to gate against "
                           "the committed baseline")
def test_no_p99_regression():
    assert _COMMITTED is not None, \
        "no committed BENCH_serve_readpath.json to gate against"
    baseline = {r["backend"]: r for r in _COMMITTED["runs"]}
    old = baseline.get("simulator")
    assert old is not None, "baseline missing the simulator run"
    new = _measure("simulator")
    ratio = new["p99_us"] / max(old["p99_us"], 1e-9)
    print(f"\nsimulator serve p99 {ratio:.2f}x of baseline "
          f"({old['p99_us']:.1f}us -> {new['p99_us']:.1f}us)")
    assert ratio < 3.0
