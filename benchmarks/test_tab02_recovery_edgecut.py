"""Table 2 — recovery time of CKPT vs Rebirth vs Migration (edge-cut).

Paper (seconds): e.g. LJournal 41.0 / 8.85 / 2.32; Rebirth beats CKPT
by 3.93x-6.86x and Migration by 3.55x-17.67x.  Migration wins on large
graphs (no bulk data movement), Rebirth wins on small ones (fewer
message rounds).
"""

from __future__ import annotations

from _harness import print_table, run

from repro.datasets import CYCLOPS_WORKLOADS

FAIL_AT = 3


def recovery_seconds(dataset, algorithm, **overrides):
    _, result = run(dataset, algorithm=algorithm, iterations=4,
                    failures=((FAIL_AT, (5,)),), **overrides)
    stats = result.recoveries[0]
    replay = stats.replayed_iterations * result.avg_iteration_time_s()
    return stats.total_s + replay, stats


def test_tab02_recovery_time(benchmark):
    rows = []

    def experiment():
        for algorithm, dataset in CYCLOPS_WORKLOADS:
            ckpt, _ = recovery_seconds(dataset, algorithm, ft="checkpoint",
                                       checkpoint_interval=2)
            reb, reb_stats = recovery_seconds(dataset, algorithm,
                                              ft="replication",
                                              recovery="rebirth")
            mig, _ = recovery_seconds(dataset, algorithm,
                                      ft="replication",
                                      recovery="migration")
            rows.append([algorithm, dataset, ckpt, reb, mig,
                         reb_stats.vertices_recovered])
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Table 2: recovery time (seconds), edge-cut, one node failure",
        ["algorithm", "dataset", "CKPT", "REB", "MIG", "|V| recovered"],
        rows)

    for algorithm, dataset, ckpt, reb, mig, _ in rows:
        # Replication-based recovery beats checkpoint recovery, always.
        assert ckpt > reb, f"{dataset}: CKPT {ckpt:.2f} !> REB {reb:.2f}"
        assert ckpt > mig, f"{dataset}: CKPT {ckpt:.2f} !> MIG {mig:.2f}"
        assert ckpt > 1.5 * min(reb, mig)
    # Crossover shape: Migration is the better strategy on the large
    # graphs (LJournal, Wiki), Rebirth on the small ones (SYN-GL, DBLP).
    by_dataset = {row[1]: row for row in rows}
    assert by_dataset["ljournal"][4] < by_dataset["ljournal"][3]
    assert by_dataset["wiki"][4] < by_dataset["wiki"][3]
    assert by_dataset["syn-gl"][3] < by_dataset["syn-gl"][4]
    assert by_dataset["dblp"][3] < by_dataset["dblp"][4]
